//! `ClassifierHandle` — the control-plane/data-plane split for NuevoMatch.
//!
//! The paper's §3.9 lifecycle (updates drift rules to the remainder until a
//! background retrain swaps in a fresh model, Figure 7) needs three roles
//! running *concurrently*:
//!
//! * **Readers** classify packets continuously. They must never block — not
//!   on updates and not on the retrain swap.
//! * A single **writer** applies [`UpdateBatch`] transactions: tombstones in
//!   the iSets, inserts/removes in the remainder.
//! * A **retrainer** periodically rebuilds the whole classifier from the
//!   current rule truth and publishes it, resetting the remainder drift.
//!
//! The handle implements this with epoch-style snapshot publication: the
//! live classifier is an immutable [`NmSnapshot`] behind an
//! [`arc_swap::ArcSwap`]. Readers [`ClassifierHandle::snapshot`] (two atomic
//! ops, never a lock) and classify against the pinned generation; the writer
//! clones the current `NuevoMatch` — cheap, because the trained models and
//! packed arrays sit behind `Arc`s and only tombstones + remainder are
//! copied — applies the batch to the clone, and publishes it under the next
//! generation. A batch is therefore **atomic**: readers observe all of it or
//! none of it.
//!
//! Retraining pins the rule truth under the control lock, trains *without*
//! the lock (readers and the writer proceed untouched), then replays the
//! updates that arrived during training and publishes. The swap itself is
//! one atomic pointer store; readers pinned to the old generation finish
//! their batches on it and drop it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use arc_swap::ArcSwap;
use parking_lot::Mutex;

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::packet::TraceBuf;
use nm_common::rule::{Priority, Rule, RuleId};
use nm_common::ruleset::RuleSet;
use nm_common::update::{
    BatchUpdatable, EngineBuilder, Generation, Snapshot, UpdateBatch, UpdateOp, UpdateReport,
};
use nm_common::Error;

use crate::config::NuevoMatchConfig;
use crate::system::NuevoMatch;

/// A generation-stamped immutable NuevoMatch — what the handle publishes and
/// readers pin.
pub type NmSnapshot<R> = Snapshot<NuevoMatch<R>>;

/// How to rebuild the classifier from scratch: the build parameters plus the
/// remainder [`EngineBuilder`], held by the control plane for every retrain.
struct RetrainRecipe<R> {
    cfg: NuevoMatchConfig,
    builder: Arc<dyn EngineBuilder<Engine = R>>,
}

/// Control-plane state, touched only by writers (apply / retrain).
struct Control<R> {
    recipe: Option<RetrainRecipe<R>>,
    /// Current rule truth (id → live version). `None` on handles constructed
    /// from a bare classifier — those never maintain a map; a retrain
    /// re-derives the truth from the live snapshot at its pin instead.
    rules: Option<HashMap<RuleId, Rule>>,
    /// Ops applied while a retrain is in flight; replayed onto the fresh
    /// classifier before it is published.
    pending: Vec<UpdateOp>,
}

struct Shared<R: Classifier> {
    live: ArcSwap<NmSnapshot<R>>,
    ctl: Mutex<Control<R>>,
    /// Mirror of the published snapshot's generation (readable without
    /// loading the snapshot).
    generation: AtomicU64,
    retraining: AtomicBool,
    retrains: AtomicU64,
}

/// Shared handle to a live NuevoMatch classifier: lock-free reads against an
/// atomically swapped immutable snapshot, transactional writes, background
/// retrains. Clone it freely — clones address the same classifier.
///
/// ```
/// use nm_common::{Classifier, FieldsSpec, FiveTuple, LinearSearch, RuleSet, UpdateBatch};
/// use nuevomatch::{ClassifierHandle, NuevoMatchConfig, RqRmiParams};
///
/// let rules: Vec<_> = (0..300u16)
///     .map(|i| FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32))
///     .collect();
/// let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
/// let cfg = NuevoMatchConfig {
///     rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
///     ..Default::default()
/// };
/// let handle = ClassifierHandle::new(&set, &cfg, LinearSearch::build).unwrap();
///
/// // Reader side: pin a snapshot, classify lock-free.
/// let snap = handle.snapshot();
/// assert_eq!(snap.classify(&[0, 0, 0, 550, 0]).unwrap().rule, 5);
///
/// // Writer side: one transaction, atomically visible.
/// handle.apply(&UpdateBatch::new().remove(5));
/// assert_eq!(handle.classify(&[0, 0, 0, 550, 0]), None);
/// assert_eq!(snap.classify(&[0, 0, 0, 550, 0]).unwrap().rule, 5); // pinned view unchanged
///
/// // Control side: retrain folds the drift back into fresh models.
/// handle.retrain().unwrap();
/// assert_eq!(handle.classify(&[0, 0, 0, 550, 0]), None);
/// ```
pub struct ClassifierHandle<R: Classifier> {
    shared: Arc<Shared<R>>,
}

impl<R: Classifier> Clone for ClassifierHandle<R> {
    fn clone(&self) -> Self {
        Self { shared: self.shared.clone() }
    }
}

impl<R: Classifier> ClassifierHandle<R> {
    /// Builds the classifier from `set` and wraps it in a handle that can
    /// update and retrain. The builder is retained: every retrain re-invokes
    /// it on the then-current rule truth.
    pub fn new<B>(set: &RuleSet, cfg: &NuevoMatchConfig, builder: B) -> Result<Self, Error>
    where
        B: EngineBuilder<Engine = R> + 'static,
    {
        let builder: Arc<dyn EngineBuilder<Engine = R>> = Arc::new(builder);
        let nm = NuevoMatch::build(set, cfg, builder.clone())?;
        let rules = set.rules().iter().map(|r| (r.id, r.clone())).collect();
        Ok(Self::assemble(nm, 1, Some(RetrainRecipe { cfg: cfg.clone(), builder }), Some(rules)))
    }

    /// Wraps an already-built classifier in a read/serve-only handle:
    /// snapshots, generation tracking, updates and the parallel runtime all
    /// work, but no rule truth is tracked and no builder retained, so
    /// [`ClassifierHandle::retrain`] reports an error.
    pub fn read_only(nm: NuevoMatch<R>) -> Self {
        Self::assemble(nm, 1, None, None)
    }

    /// Restores a handle around a classifier that already carries history
    /// (snapshot warm-start): `generation` seeds the published stamp and the
    /// rule truth comes from `rules`.
    pub(crate) fn restore<B>(
        nm: NuevoMatch<R>,
        generation: Generation,
        cfg: &NuevoMatchConfig,
        builder: B,
        rules: Vec<Rule>,
    ) -> Self
    where
        B: EngineBuilder<Engine = R> + 'static,
    {
        let builder: Arc<dyn EngineBuilder<Engine = R>> = Arc::new(builder);
        Self::assemble(
            nm,
            generation.max(1),
            Some(RetrainRecipe { cfg: cfg.clone(), builder }),
            Some(rules.into_iter().map(|r| (r.id, r)).collect()),
        )
    }

    fn assemble(
        nm: NuevoMatch<R>,
        generation: Generation,
        recipe: Option<RetrainRecipe<R>>,
        rules: Option<HashMap<RuleId, Rule>>,
    ) -> Self {
        debug_assert!(
            recipe.is_none() || rules.is_some(),
            "a handle that can retrain must track the rule truth"
        );
        Self {
            shared: Arc::new(Shared {
                live: ArcSwap::new(Arc::new(Snapshot::new(nm, generation))),
                ctl: Mutex::new(Control { recipe, rules, pending: Vec::new() }),
                generation: AtomicU64::new(generation),
                retraining: AtomicBool::new(false),
                retrains: AtomicU64::new(0),
            }),
        }
    }

    /// Pins the current snapshot. Never blocks (two atomic ops); the
    /// returned `Arc` keeps that generation's models alive for as long as
    /// the reader holds it, regardless of concurrent updates and retrains.
    pub fn snapshot(&self) -> Arc<NmSnapshot<R>> {
        self.shared.live.load_full()
    }

    /// The published generation (bumps on every applied batch and every
    /// retrain publish).
    pub fn generation(&self) -> Generation {
        self.shared.generation.load(SeqCst)
    }

    /// True while a retrain is between pin and publish.
    pub fn retrain_in_progress(&self) -> bool {
        self.shared.retraining.load(SeqCst)
    }

    /// Completed retrain publishes since construction.
    pub fn retrains_completed(&self) -> u64 {
        self.shared.retrains.load(SeqCst)
    }

    /// Publishes `snap` as the next generation. Caller must hold the ctl
    /// lock (single-writer discipline).
    fn publish(&self, nm: NuevoMatch<R>) -> Generation {
        let generation = self.shared.generation.load(SeqCst) + 1;
        self.shared.live.store(Arc::new(Snapshot::new(nm, generation)));
        self.shared.generation.store(generation, SeqCst);
        generation
    }
}

impl<R: BatchUpdatable + Clone> ClassifierHandle<R> {
    /// Warm-starts a handle from a [`crate::persist::save_snapshot`] image:
    /// models, iSet tables, tombstones and remainder rules all load as
    /// persisted — no retraining — and the handle resumes at the persisted
    /// generation, ready to update and retrain.
    pub fn from_snapshot<B>(data: &[u8], cfg: &NuevoMatchConfig, builder: B) -> Result<Self, Error>
    where
        B: EngineBuilder<Engine = R> + 'static,
    {
        let (nm, generation) = crate::persist::load_snapshot(data, &builder)?;
        let rules = nm.live_rules();
        Ok(Self::restore(nm, generation, cfg, builder, rules))
    }

    /// Serialises the live snapshot (see [`crate::persist::save_snapshot`]);
    /// a later [`ClassifierHandle::from_snapshot`] resumes from it without
    /// retraining.
    pub fn save(&self) -> Vec<u8> {
        let snap = self.snapshot();
        crate::persist::save_snapshot(snap.engine(), snap.generation())
    }

    /// Applies one transaction and publishes the result as a new snapshot.
    ///
    /// Concurrent readers never see a partially-applied batch: they keep
    /// classifying against the previous snapshot until the atomic swap, then
    /// see all of it. Writers are serialised by the control lock; returns
    /// the same accounting as [`NuevoMatch::apply`].
    pub fn apply(&self, batch: &UpdateBatch) -> UpdateReport {
        if batch.is_empty() {
            // Nothing to publish: cloning the engine and bumping the
            // generation for zero ops would only stampede the caches layered
            // above (the generation contract is "bumps when content
            // changes").
            return UpdateReport::default();
        }
        let mut ctl = self.shared.ctl.lock();
        Self::fold_truth(&mut ctl.rules, batch);
        if self.shared.retraining.load(SeqCst) {
            ctl.pending.extend(batch.ops().iter().cloned());
        }
        // Copy-on-write: clone the live engine (Arc-shared models +
        // tombstones and remainder), mutate the clone, publish.
        let mut next = self.snapshot().engine().clone();
        let report = next.apply(batch);
        self.publish(next);
        report
    }

    /// Rebuilds the classifier from the current rule truth and atomically
    /// swaps it in, resetting the §3.9 remainder drift. Training runs
    /// *without* the control lock, so the writer keeps applying batches (they
    /// are replayed onto the fresh classifier before it publishes) and
    /// readers never block. Returns the published generation.
    ///
    /// Errors if the handle was built [`ClassifierHandle::read_only`], if a
    /// retrain is already in flight, or if training fails.
    pub fn retrain(&self) -> Result<Generation, Error> {
        // Pin: capture the truth and the recipe under the lock.
        let (set, cfg, builder) = {
            let mut ctl = self.shared.ctl.lock();
            let recipe = ctl.recipe.as_ref().ok_or_else(|| Error::Build {
                msg: "ClassifierHandle::retrain: read-only handle (no EngineBuilder retained)"
                    .to_string(),
            })?;
            if self.shared.retraining.swap(true, SeqCst) {
                return Err(Error::Build {
                    msg: "ClassifierHandle::retrain: a retrain is already in flight".to_string(),
                });
            }
            let (cfg, builder) = (recipe.cfg.clone(), recipe.builder.clone());
            let snapshot = self.snapshot();
            // Invariant (held by every constructor): a handle with a
            // retrain recipe also tracks the rule truth.
            let mut rules: Vec<Rule> = ctl
                .rules
                .as_ref()
                .expect("recipe-bearing handles always track rule truth")
                .values()
                .cloned()
                .collect();
            // Rebuild in priority order, not map order: engines whose build
            // is insertion-order-sensitive (TupleMerge's table formation)
            // degrade badly on a randomised rule order, and determinism
            // makes retrains reproducible.
            rules.sort_by_key(|r| (r.priority, r.id));
            ctl.pending.clear();
            let spec = snapshot.engine().spec().clone();
            match RuleSet::new(spec, rules) {
                Ok(set) => (set, cfg, builder),
                Err(e) => {
                    self.shared.retraining.store(false, SeqCst);
                    return Err(e);
                }
            }
        };
        // Train: the long pole, executed with no locks held.
        let fresh = match NuevoMatch::build(&set, &cfg, builder) {
            Ok(nm) => nm,
            Err(e) => {
                self.shared.retraining.store(false, SeqCst);
                return Err(e);
            }
        };
        // Publish: replay what arrived during training, swap, unmark.
        let mut ctl = self.shared.ctl.lock();
        let mut fresh = fresh;
        if !ctl.pending.is_empty() {
            let replay: UpdateBatch = ctl.pending.drain(..).collect();
            fresh.apply(&replay);
        }
        let generation = self.publish(fresh);
        self.shared.retraining.store(false, SeqCst);
        self.shared.retrains.fetch_add(1, SeqCst);
        Ok(generation)
    }

    /// Folds a batch into the truth map. Handles without a map (started from
    /// a bare classifier) skip this — their retrains re-derive the truth
    /// from the live snapshot instead of maintaining it incrementally.
    fn fold_truth(rules: &mut Option<HashMap<RuleId, Rule>>, batch: &UpdateBatch) {
        let Some(map) = rules.as_mut() else { return };
        for op in batch.ops() {
            match op {
                UpdateOp::Insert(r) | UpdateOp::Modify(r) => {
                    map.insert(r.id, r.clone());
                }
                UpdateOp::Remove(id) => {
                    map.remove(id);
                }
            }
        }
    }
}

impl<R: BatchUpdatable + Clone + Send + Sync + 'static> ClassifierHandle<R> {
    /// Kicks a retrain off on a background thread and returns its join
    /// handle. Dropping the join handle detaches the retrain; its publish
    /// still lands.
    pub fn spawn_retrain(&self) -> std::thread::JoinHandle<Result<Generation, Error>> {
        let handle = self.clone();
        std::thread::spawn(move || handle.retrain())
    }
}

impl<R: Classifier> Classifier for ClassifierHandle<R> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        self.snapshot().classify(key)
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.snapshot().classify_with_floor(key, floor)
    }

    /// One snapshot pin per batch: every packet in the batch is classified
    /// against the same generation.
    fn classify_batch(&self, keys: &[u64], stride: usize, out: &mut [Option<MatchResult>]) {
        self.snapshot().classify_batch(keys, stride, out);
    }

    fn classify_batch_with_floors(
        &self,
        keys: &[u64],
        stride: usize,
        floors: &[Priority],
        out: &mut [Option<MatchResult>],
    ) {
        self.snapshot().classify_batch_with_floors(keys, stride, floors, out);
    }

    fn memory_bytes(&self) -> usize {
        self.snapshot().memory_bytes()
    }

    fn name(&self) -> &'static str {
        self.snapshot().name()
    }

    fn num_rules(&self) -> usize {
        self.snapshot().num_rules()
    }

    fn generation(&self) -> Generation {
        ClassifierHandle::generation(self)
    }
}

/// Parameters for [`measure_update_curve`] — the measured analogue of the
/// paper's Figure 7 experiment.
#[derive(Clone, Copy, Debug)]
pub struct UpdateBenchConfig {
    /// Total measurement horizon (seconds).
    pub duration_s: f64,
    /// Sampling period for throughput points (seconds).
    pub sample_every_s: f64,
    /// Target update rate (rule updates per second).
    pub updates_per_s: f64,
    /// Updates grouped per [`UpdateBatch`] transaction.
    pub ops_per_batch: usize,
    /// Retrain trigger period (seconds); `0.0` disables retraining.
    pub retrain_period_s: f64,
    /// Classification batch size for the reader (paper: 128).
    pub batch: usize,
}

impl Default for UpdateBenchConfig {
    fn default() -> Self {
        Self {
            duration_s: 10.0,
            sample_every_s: 0.25,
            updates_per_s: 1_000.0,
            ops_per_batch: 32,
            retrain_period_s: 4.0,
            batch: 128,
        }
    }
}

/// One sample of the measured Figure 7 curve.
#[derive(Clone, Copy, Debug)]
pub struct UpdateCurvePoint {
    /// Sample time since measurement start (seconds).
    pub t_s: f64,
    /// Reader throughput over the sample window (packets per second).
    pub pps: f64,
    /// Published generation at the sample instant.
    pub generation: Generation,
    /// Fraction of rules served by the remainder at the sample instant.
    pub remainder_fraction: f64,
    /// Retrains completed so far.
    pub retrains: u64,
}

/// Paces a live-serving control plane: applies update transactions at a
/// target ops/second (grouped into batches) and spawns background retrains
/// on a fixed period, tracking their join handles so [`UpdatePacer::drain`]
/// can wait out every retrain it started.
///
/// This is the writer-side loop body shared by [`measure_update_curve`] and
/// `nmctl serve`: call [`UpdatePacer::tick`] repeatedly from the writer
/// thread; it either applies one due batch or sleeps a beat.
pub struct UpdatePacer {
    interval: Option<std::time::Duration>,
    next_fire: std::time::Instant,
    retrain_period_s: f64,
    last_retrain: std::time::Instant,
    seq: u64,
    ops_applied: u64,
}

impl UpdatePacer {
    /// A pacer firing `ops_per_batch`-op transactions so that roughly
    /// `updates_per_s` ops land per second (`<= 0.0` disables updates), and
    /// triggering a background retrain every `retrain_period_s` seconds
    /// (`<= 0.0` disables retrains).
    pub fn new(updates_per_s: f64, ops_per_batch: usize, retrain_period_s: f64) -> Self {
        let interval = (updates_per_s > 0.0).then(|| {
            std::time::Duration::from_secs_f64(ops_per_batch.max(1) as f64 / updates_per_s)
        });
        let now = std::time::Instant::now();
        Self {
            interval,
            next_fire: now,
            retrain_period_s,
            last_retrain: now,
            seq: 0,
            ops_applied: 0,
        }
    }

    /// One pacing step against `handle`: applies `make_batch(seq)` if a
    /// transaction is due (otherwise sleeps ~200µs), and spawns a retrain if
    /// the period elapsed and none is in flight. Returns the ops applied by
    /// this tick. `joins` collects the handles of spawned retrains — pass
    /// the same vector to every tick and hand it to [`UpdatePacer::drain`]
    /// when the serving loop stops.
    pub fn tick<R, F>(
        &mut self,
        handle: &ClassifierHandle<R>,
        joins: &mut Vec<std::thread::JoinHandle<Result<Generation, Error>>>,
        make_batch: F,
    ) -> usize
    where
        R: BatchUpdatable + Clone + Send + Sync + 'static,
        F: FnOnce(u64) -> UpdateBatch,
    {
        let mut applied = 0;
        match self.interval {
            Some(interval) if std::time::Instant::now() >= self.next_fire => {
                let batch = make_batch(self.seq);
                self.seq += 1;
                applied = batch.len();
                self.ops_applied += applied as u64;
                handle.apply(&batch);
                self.next_fire += interval;
            }
            _ => std::thread::sleep(std::time::Duration::from_micros(200)),
        }
        if self.retrain_period_s > 0.0
            && self.last_retrain.elapsed().as_secs_f64() >= self.retrain_period_s
            && !handle.retrain_in_progress()
        {
            self.last_retrain = std::time::Instant::now();
            joins.push(handle.spawn_retrain());
        }
        applied
    }

    /// Total update ops applied across all ticks.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Joins every retrain this pacer spawned (results discarded — an
    /// "already in flight" loss is benign). Without this, a retrain spawned
    /// on the final tick could still be warming up when the caller reads its
    /// "settled" stats, or be killed mid-train by process exit.
    pub fn drain(joins: Vec<std::thread::JoinHandle<Result<Generation, Error>>>) {
        for join in joins {
            let _ = join.join();
        }
    }
}

/// Measures throughput-under-updates (Figure 7, §3.9) against a live
/// [`ClassifierHandle`]: one reader thread classifies the trace in batches
/// continuously, an updater thread applies `make_batch(i)` transactions at
/// the configured rate, and retrains fire on their period in the background.
/// Readers never block on any of it — that is the property under test.
///
/// Returns the sampled curve; validate it against
/// `nm_analysis::throughput_at` to close the loop with the analytic model.
pub fn measure_update_curve<R, F>(
    handle: &ClassifierHandle<R>,
    trace: &TraceBuf,
    cfg: &UpdateBenchConfig,
    make_batch: F,
) -> Vec<UpdateCurvePoint>
where
    R: BatchUpdatable + Clone + Send + Sync + 'static,
    F: FnMut(u64) -> UpdateBatch + Send,
{
    use std::time::Instant;
    let n = trace.len();
    if n == 0 || cfg.duration_s <= 0.0 {
        return Vec::new();
    }
    let stride = trace.stride();
    let raw = trace.raw();
    let batch = cfg.batch.max(1);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let mut curve = Vec::new();
    let mut make_batch = make_batch;

    crossbeam::thread::scope(|scope| {
        // Updater: paced transactions + periodic background retrains, all
        // through the shared pacer. The spawned-retrain joins are drained
        // before the thread exits so the caller reads settled stats.
        scope.spawn(|_| {
            let mut pacer =
                UpdatePacer::new(cfg.updates_per_s, cfg.ops_per_batch, cfg.retrain_period_s);
            let mut joins = Vec::new();
            while !stop.load(SeqCst) {
                pacer.tick(handle, &mut joins, &mut make_batch);
            }
            UpdatePacer::drain(joins);
        });

        // Reader: the measured data plane. One snapshot pin per batch.
        let mut out: Vec<Option<MatchResult>> = vec![None; batch];
        let mut lo = 0usize;
        let mut window_packets = 0u64;
        let mut window_start = start;
        loop {
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= cfg.duration_s {
                break;
            }
            let hi = (lo + batch).min(n);
            handle.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out[..hi - lo]);
            window_packets += (hi - lo) as u64;
            lo = if hi == n { 0 } else { hi };
            let window_s = window_start.elapsed().as_secs_f64();
            if window_s >= cfg.sample_every_s {
                let snap = handle.snapshot();
                curve.push(UpdateCurvePoint {
                    t_s: start.elapsed().as_secs_f64(),
                    pps: window_packets as f64 / window_s,
                    generation: snap.generation(),
                    remainder_fraction: snap.engine().remainder_fraction(),
                    retrains: handle.retrains_completed(),
                });
                window_packets = 0;
                window_start = Instant::now();
            }
        }
        stop.store(true, SeqCst);
    })
    .expect("update-bench worker panicked");
    // Every retrain the pacer spawned was joined inside the scope, so the
    // stats are settled the moment this returns.
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RqRmiParams;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch};

    fn port_set(n: u16) -> RuleSet {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    fn fast_cfg() -> NuevoMatchConfig {
        NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        }
    }

    fn handle(n: u16) -> ClassifierHandle<LinearSearch> {
        ClassifierHandle::new(&port_set(n), &fast_cfg(), LinearSearch::build).unwrap()
    }

    #[test]
    fn apply_is_atomic_and_pinned_snapshots_are_stable() {
        let h = handle(200);
        let pinned = h.snapshot();
        let g0 = h.generation();
        let report = h.apply(
            &UpdateBatch::new()
                .remove(5)
                .insert(FiveTuple::new().dst_port_exact(61_000).into_rule(900, 0)),
        );
        assert_eq!((report.removed, report.inserted), (1, 1));
        assert_eq!(h.generation(), g0 + 1);
        // New reads see the whole batch.
        assert_eq!(h.classify(&[0, 0, 0, 550, 0]), None);
        assert_eq!(h.classify(&[0, 0, 0, 61_000, 0]).unwrap().rule, 900);
        // The pinned generation is frozen.
        assert_eq!(pinned.generation(), g0);
        assert_eq!(pinned.classify(&[0, 0, 0, 550, 0]).unwrap().rule, 5);
        assert_eq!(pinned.classify(&[0, 0, 0, 61_000, 0]), None);
        // An empty transaction publishes nothing and bumps nothing (the
        // generation contract: bumps only when content changes).
        assert_eq!(h.apply(&UpdateBatch::new()), UpdateReport::default());
        assert_eq!(h.generation(), g0 + 1);
    }

    #[test]
    fn retrain_resets_drift_and_preserves_semantics() {
        let h = handle(300);
        // Drift a quarter of the rules to the remainder.
        for i in 0..75u32 {
            let port = 40_000 + i as u16;
            h.apply(
                &UpdateBatch::new()
                    .modify(FiveTuple::new().dst_port_range(port, port).into_rule(i, i)),
            );
        }
        let drifted = h.snapshot().engine().remainder_fraction();
        assert!(drifted > 0.2, "expected drift, got {drifted}");
        let oracle_before: Vec<_> =
            (0u64..65_536).step_by(97).map(|p| h.classify(&[0, 0, 0, p, 0])).collect();
        let gen = h.retrain().unwrap();
        assert_eq!(gen, h.generation());
        assert_eq!(h.retrains_completed(), 1);
        let fresh = h.snapshot().engine().remainder_fraction();
        assert!(fresh < drifted, "retrain must shrink the remainder: {drifted} -> {fresh}");
        // Same classification behaviour, new structure. Priorities are
        // unique here, so rule identity must be preserved exactly.
        for (i, p) in (0u64..65_536).step_by(97).enumerate() {
            assert_eq!(h.classify(&[0, 0, 0, p, 0]), oracle_before[i], "port {p}");
        }
    }

    #[test]
    fn updates_during_retrain_are_replayed() {
        let h = handle(300);
        // Start a slow-ish retrain on a background thread, then race updates
        // against it.
        let join = h.spawn_retrain();
        for i in 0..20u32 {
            h.apply(&UpdateBatch::new().insert(
                FiveTuple::new().dst_port_exact(50_000 + i as u16).into_rule(10_000 + i, 0),
            ));
        }
        join.join().unwrap().unwrap();
        // Whether an update landed before the pin or during training, the
        // published classifier must serve it.
        for i in 0..20u32 {
            let key = [0u64, 0, 0, 50_000 + i as u64, 0];
            assert_eq!(h.classify(&key).unwrap().rule, 10_000 + i, "update {i} lost by retrain");
        }
    }

    #[test]
    fn read_only_handle_serves_but_refuses_retrain() {
        let set = port_set(100);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let h = ClassifierHandle::read_only(nm);
        assert_eq!(h.classify(&[0, 0, 0, 550, 0]).unwrap().rule, 5);
        assert!(h.retrain().is_err());
        // Updates still work (truth is simply not tracked for retrains).
        h.apply(&UpdateBatch::new().remove(5));
        assert_eq!(h.classify(&[0, 0, 0, 550, 0]), None);
    }

    #[test]
    fn concurrent_retrain_attempts_do_not_stack() {
        let h = handle(250);
        let a = h.spawn_retrain();
        let b = h.spawn_retrain();
        let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
        // At least one must succeed; both may if they did not overlap.
        assert!(ra.is_ok() || rb.is_ok());
        assert!(h.retrains_completed() >= 1);
        assert!(!h.retrain_in_progress());
    }

    #[test]
    fn measure_update_curve_samples_under_load() {
        let h = handle(200);
        let mut trace = TraceBuf::new(5);
        let mut s = nm_common::SplitMix64::new(7);
        for _ in 0..4_000 {
            trace.push(&[0, 0, 0, s.below(20_000), 0]);
        }
        let cfg = UpdateBenchConfig {
            duration_s: 0.6,
            sample_every_s: 0.1,
            updates_per_s: 2_000.0,
            ops_per_batch: 16,
            retrain_period_s: 0.2,
            batch: 128,
        };
        let mut next_port = 30_000u16;
        let curve = measure_update_curve(&h, &trace, &cfg, |seq| {
            let mut b = UpdateBatch::new();
            for k in 0..16u64 {
                next_port = next_port.wrapping_add(1).max(30_000);
                let id = (seq * 16 + k) as u32 % 200;
                b = b.modify(FiveTuple::new().dst_port_exact(next_port).into_rule(id, id));
            }
            b
        });
        assert!(curve.len() >= 3, "expected several samples, got {}", curve.len());
        assert!(curve.iter().all(|p| p.pps > 0.0));
        let last = curve.last().unwrap();
        assert!(last.generation > 1, "updates must have published generations");
        // The set drifts under modify load...
        assert!(curve.iter().any(|p| p.remainder_fraction > 0.0));
        assert!(!h.retrain_in_progress(), "no retrain left dangling");
    }
}
