//! The TupleMerge / Tuple Space Search engines.

use crate::table::Table;
use crate::tuple::Tuple;
use nm_common::classifier::{Classifier, MatchResult};
use nm_common::memsize;
use nm_common::prefetch::prefetch_index;
use nm_common::rule::{Priority, Rule, RuleId};
use nm_common::ruleset::{FieldsSpec, RuleSet};
use nm_common::update::{BatchUpdatable, Generation, UpdateBatch, UpdateReport};
use std::collections::HashMap;

/// TupleMerge parameters.
#[derive(Clone, Copy, Debug)]
pub struct TupleMergeConfig {
    /// Maximum bucket size before a table splits (paper: 40, §5.1).
    pub collision_limit: usize,
    /// Relax natural tuples so related tuples share tables (TupleMerge).
    /// `false` gives classic Tuple Space Search.
    pub relax: bool,
}

impl Default for TupleMergeConfig {
    fn default() -> Self {
        Self { collision_limit: 40, relax: true }
    }
}

/// Hash-based classifier with tuple merging and online updates (via
/// [`BatchUpdatable`]; `Clone` supports copy-on-write snapshot pipelines).
#[derive(Clone)]
pub struct TupleMerge {
    spec: FieldsSpec,
    cfg: TupleMergeConfig,
    tables: Vec<Table>,
    /// Table indices sorted by `best_priority` — the probe order that makes
    /// early exit effective.
    order: Vec<u32>,
    /// Rule storage; `None` marks a removed slot.
    slab: Vec<Option<Rule>>,
    by_id: HashMap<RuleId, u32>,
    /// Update stamp (see [`Classifier::generation`]); build-time inserts do
    /// not count.
    generation: Generation,
    name: &'static str,
}

impl TupleMerge {
    /// Builds a TupleMerge classifier over a rule-set.
    pub fn build(set: &RuleSet) -> Self {
        Self::with_config(set, TupleMergeConfig::default())
    }

    /// Builds with explicit parameters.
    pub fn with_config(set: &RuleSet, cfg: TupleMergeConfig) -> Self {
        let name = if cfg.relax { "tm" } else { "tss" };
        let mut tm = Self {
            spec: set.spec().clone(),
            cfg,
            tables: Vec::new(),
            order: Vec::new(),
            slab: Vec::with_capacity(set.len()),
            by_id: HashMap::with_capacity(set.len()),
            generation: 0,
            name,
        };
        for rule in set.rules() {
            tm.insert_rule(rule.clone());
        }
        tm
    }

    /// Number of tuple tables currently allocated (Figure 11 diagnostics —
    /// more tables means more probes per lookup).
    pub fn num_tables(&self) -> usize {
        self.tables.iter().filter(|t| !t.is_empty()).count()
    }

    /// Largest bucket across tables (collision-limit verification).
    pub fn max_bucket(&self) -> usize {
        self.tables.iter().map(Table::max_bucket).max().unwrap_or(0)
    }

    fn table_tuple_for(&self, natural: &Tuple) -> Tuple {
        if self.cfg.relax {
            natural.relaxed(&self.spec)
        } else {
            natural.clone()
        }
    }

    /// Picks the finest existing table the rule fits in, if any.
    fn find_table(&self, natural: &Tuple) -> Option<usize> {
        let mut best: Option<(usize, u32)> = None;
        for (i, t) in self.tables.iter().enumerate() {
            if natural.fits_in(&t.lens) {
                let fineness: u32 = t.lens.0.iter().map(|&l| l as u32).sum();
                if best.map_or(true, |(_, bf)| fineness > bf) {
                    best = Some((i, fineness));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    fn resort_order(&mut self) {
        self.order = (0..self.tables.len() as u32).collect();
        let tables = &self.tables;
        self.order.sort_by_key(|&i| tables[i as usize].best_priority);
    }

    fn insert_slab(&mut self, rule: Rule) -> u32 {
        let idx = self.slab.len() as u32;
        self.by_id.insert(rule.id, idx);
        self.slab.push(Some(rule));
        idx
    }

    fn insert_into_tables(&mut self, slab_idx: u32) {
        let rule = self.slab[slab_idx as usize].clone().expect("live rule");
        let natural = Tuple::natural(&rule.fields, &self.spec);
        let table_idx = match self.find_table(&natural) {
            Some(i) => i,
            None => {
                self.tables.push(Table::new(self.table_tuple_for(&natural)));
                self.tables.len() - 1
            }
        };
        let h = self.tables[table_idx].hash_rule(&rule, &self.spec);
        let bucket_len = self.tables[table_idx].insert(h, slab_idx, rule.priority);
        if bucket_len > self.cfg.collision_limit {
            self.split(table_idx);
        }
        self.resort_order();
    }

    /// Splits an overflowing table: refine the field where the most members
    /// have headroom (their natural lengths allow a longer mask) and re-file
    /// every rule. Rules are re-inserted through the normal path, so they
    /// land in the refined table when they fit and in coarser tables (or a
    /// fresh one matching their own relaxed tuple) otherwise.
    ///
    /// The refinement step is the smallest *positive* headroom among the
    /// members that can refine at all — a single mask-exact rule in a mixed
    /// bucket must not veto the split (it simply stays behind in a coarser
    /// table). Min-over-everyone here made table formation brutally
    /// insertion-order-sensitive: one early coarse rule could pin thousands
    /// of later, finer rules into an unsplittable bucket, which is exactly
    /// what control-plane retrains (which re-file the whole rule list) kept
    /// hitting.
    fn split(&mut self, table_idx: usize) {
        let lens = self.tables[table_idx].lens.clone();
        let members = self.tables[table_idx].drain_all();
        // Per-field: how many members could accept a longer mask, and the
        // smallest positive headroom among them.
        let nf = lens.0.len();
        let mut refinable = vec![0usize; nf];
        let mut step = vec![u8::MAX; nf];
        for &m in &members {
            let rule = self.slab[m as usize].as_ref().expect("live rule");
            let nat = Tuple::natural(&rule.fields, &self.spec);
            for d in 0..nf {
                let hr = nat.0[d].saturating_sub(lens.0[d]);
                if hr > 0 {
                    refinable[d] += 1;
                    step[d] = step[d].min(hr);
                }
            }
        }
        let best_dim = (0..nf).max_by_key(|&d| refinable[d]).unwrap_or(0);
        if refinable[best_dim] == 0 {
            // Nothing to refine (identical natural tuples): accept the long
            // bucket — correctness is unaffected, the scan just costs more.
            let mut t = Table::new(lens);
            for m in &members {
                let rule = self.slab[*m as usize].as_ref().expect("live rule");
                let h = t.hash_rule(rule, &self.spec);
                t.insert(h, *m, rule.priority);
            }
            self.tables[table_idx] = t;
            return;
        }
        let step = step[best_dim].clamp(1, 4);
        let mut new_lens = lens.clone();
        new_lens.0[best_dim] += step;
        self.tables[table_idx] = Table::new(new_lens);
        for m in members {
            self.insert_into_tables_no_split(m);
        }
        // One refinement round per overflow keeps splits terminating; if a
        // bucket still exceeds the limit the next insert refines again.
    }

    fn insert_into_tables_no_split(&mut self, slab_idx: u32) {
        let rule = self.slab[slab_idx as usize].clone().expect("live rule");
        let natural = Tuple::natural(&rule.fields, &self.spec);
        let table_idx = match self.find_table(&natural) {
            Some(i) => i,
            None => {
                self.tables.push(Table::new(self.table_tuple_for(&natural)));
                self.tables.len() - 1
            }
        };
        let h = self.tables[table_idx].hash_rule(&rule, &self.spec);
        self.tables[table_idx].insert(h, slab_idx, rule.priority);
    }

    /// Table-major batched probe — the batch form of [`TupleMerge::probe`].
    ///
    /// The per-key probe walks every table for one packet before touching
    /// the next packet, reloading each table's tuple masks and hash state
    /// per packet. This walks every *packet* for one table before moving to
    /// the next table: the table metadata stays in registers, the hash loop
    /// runs tight, and the independent bucket lookups give the out-of-order
    /// core memory-level parallelism. Per-key results are bit-identical to
    /// [`TupleMerge::probe`] — the loop interchange never reorders work
    /// *within* a key, and each key keeps its own early-exit bound
    /// (`min(best.priority, floor)`, checked against the same
    /// priority-sorted table order).
    ///
    /// `floors[i] == Priority::MAX` means no floor for key `i` (see
    /// [`Classifier::classify_batch_with_floors`]).
    fn probe_batch(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        const CHUNK: usize = 64;
        let n = out.len();
        assert!(stride > 0, "probe_batch: stride must be positive");
        assert_eq!(keys.len(), stride * n, "probe_batch: key buffer length mismatch");
        let mut hashes = [0u64; CHUNK];
        let mut base = 0usize;
        while base < n {
            let m = CHUNK.min(n - base);
            let mut best: [Option<MatchResult>; CHUNK] = [None; CHUNK];
            // bound[i] = min(best[i].priority, floor[i]): a rule must beat it.
            let mut bound = [Priority::MAX; CHUNK];
            if let Some(f) = floors {
                bound[..m].copy_from_slice(&f[base..base + m]);
            }
            for &ti in &self.order {
                let table = &self.tables[ti as usize];
                // A key is live while some rule in this (or a later) table
                // could still beat its bound; tables are sorted by
                // best_priority, so a key dead here stays dead.
                let mut any_live = false;
                if !table.is_empty() {
                    // Phase 1: hash every live key against this table.
                    for i in 0..m {
                        if bound[i] > table.best_priority {
                            let key = &keys[(base + i) * stride..(base + i + 1) * stride];
                            hashes[i] = table.hash_key(key, &self.spec);
                            any_live = true;
                        }
                    }
                } else {
                    any_live = (0..m).any(|i| bound[i] > table.best_priority);
                }
                if !any_live {
                    break;
                }
                if table.is_empty() {
                    continue;
                }
                // Phase 2a: bucket lookups for all live keys, prefetching the
                // head of each bucket's slab rules so phase 2b's (pointer-
                // chasing) scans start with warm lines.
                let mut buckets: [&[u32]; CHUNK] = [&[]; CHUNK];
                for i in 0..m {
                    if bound[i] <= table.best_priority {
                        continue;
                    }
                    if let Some(bucket) = table.bucket(hashes[i]) {
                        buckets[i] = bucket;
                        for &si in bucket.iter().take(8) {
                            prefetch_index(&self.slab, si as usize);
                        }
                    }
                }
                // Phase 2b: bucket scans (independent across keys).
                for i in 0..m {
                    if bound[i] <= table.best_priority {
                        continue;
                    }
                    let key = &keys[(base + i) * stride..(base + i + 1) * stride];
                    for &si in buckets[i] {
                        if let Some(rule) = &self.slab[si as usize] {
                            if rule.priority < bound[i] && rule.matches(key) {
                                best[i] = Some(MatchResult::new(rule.id, rule.priority));
                                bound[i] = rule.priority;
                            }
                        }
                    }
                }
            }
            out[base..base + m].copy_from_slice(&best[..m]);
            base += m;
        }
    }

    #[inline]
    fn probe(
        &self,
        key: &[u64],
        mut best: Option<MatchResult>,
        floor: Priority,
    ) -> Option<MatchResult> {
        for &ti in &self.order {
            let table = &self.tables[ti as usize];
            let bound = best.map_or(floor, |b| b.priority.min(floor));
            if bound <= table.best_priority {
                break; // no remaining table can beat the bound
            }
            if table.is_empty() {
                continue;
            }
            let h = table.hash_key(key, &self.spec);
            if let Some(bucket) = table.bucket(h) {
                for &si in bucket {
                    if let Some(rule) = &self.slab[si as usize] {
                        let cur = best.map_or(floor, |b| b.priority.min(floor));
                        if rule.priority < cur && rule.matches(key) {
                            best = Some(MatchResult::new(rule.id, rule.priority));
                        }
                    }
                }
            }
        }
        best.filter(|m| m.priority < floor)
    }
}

impl Classifier for TupleMerge {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        self.probe(key, None, Priority::MAX)
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.probe(key, None, floor)
    }

    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        self.probe_batch(keys, stride, floors, out);
    }

    fn memory_bytes(&self) -> usize {
        // Lookup-path index: tables (+ their buckets of slab indices) and the
        // probe order. The slab is rule storage; by_id is update bookkeeping.
        self.tables.iter().map(Table::memory_bytes).sum::<usize>()
            + memsize::vec_bytes(&self.order)
            + self.tables.len() * std::mem::size_of::<Table>()
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn num_rules(&self) -> usize {
        self.by_id.len()
    }

    fn generation(&self) -> Generation {
        self.generation
    }
}

impl BatchUpdatable for TupleMerge {
    fn apply(&mut self, batch: &UpdateBatch) -> UpdateReport {
        let report =
            nm_common::update::apply_ops(self, batch, Self::insert_rule, |s, id| s.remove_rule(id));
        // Bump only when content changed: a batch of pure misses serves the
        // same rules, and a spurious bump stampedes caches layered above.
        if report.changed() {
            self.generation += 1;
        }
        report
    }

    fn export_rules(&self) -> Vec<Rule> {
        self.slab.iter().filter_map(|slot| slot.clone()).collect()
    }
}

impl TupleMerge {
    /// Single-rule insert primitive shared by construction (which must not
    /// bump the generation) and the batch path (which does).
    fn insert_rule(&mut self, rule: Rule) {
        if let Some(&old) = self.by_id.get(&rule.id) {
            // Same id re-inserted: drop the stale version first.
            self.remove_slab(old);
        }
        let idx = self.insert_slab(rule);
        self.insert_into_tables(idx);
    }

    fn remove_rule(&mut self, id: RuleId) -> bool {
        match self.by_id.remove(&id) {
            Some(idx) => {
                self.remove_slab(idx);
                true
            }
            None => false,
        }
    }

    fn remove_slab(&mut self, idx: u32) {
        if let Some(rule) = self.slab[idx as usize].take() {
            for t in &mut self.tables {
                let h = t.hash_rule(&rule, &self.spec);
                if t.remove(h, idx) {
                    break;
                }
            }
            self.by_id.remove(&rule.id);
        }
    }
}

/// Classic Tuple Space Search: one table per natural tuple, no merging.
pub struct TupleSpaceSearch;

impl TupleSpaceSearch {
    /// Builds a TSS classifier (a [`TupleMerge`] with relaxation disabled
    /// and no collision limit).
    pub fn build(set: &RuleSet) -> TupleMerge {
        TupleMerge::with_config(set, TupleMergeConfig { collision_limit: usize::MAX, relax: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FiveTuple, LinearSearch, SplitMix64};

    fn random_set(seed: u64, n: usize) -> RuleSet {
        let mut rng = SplitMix64::new(seed);
        let rules: Vec<Rule> = (0..n)
            .map(|i| {
                let mut ft = FiveTuple::new();
                match rng.below(4) {
                    0 => {
                        ft = ft
                            .src_prefix_raw(rng.next_u64() as u32, 8 + rng.below(25) as u8)
                            .proto_exact(6);
                    }
                    1 => {
                        ft = ft
                            .dst_prefix_raw(rng.next_u64() as u32, 8 + rng.below(25) as u8)
                            .dst_port_exact(rng.below(1024) as u16);
                    }
                    2 => {
                        let lo = rng.below(60_000) as u16;
                        ft = ft.dst_port_range(lo, lo + rng.below(5_000) as u16);
                    }
                    _ => {
                        ft = ft
                            .src_prefix_raw(rng.next_u64() as u32, 16)
                            .dst_prefix_raw(rng.next_u64() as u32, 16);
                    }
                }
                ft.into_rule(i as RuleId, i as Priority)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    fn random_keys(seed: u64, n: usize, set: &RuleSet) -> Vec<[u64; 5]> {
        // Half random, half generated inside random rules so matches happen.
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                if i % 2 == 0 || set.is_empty() {
                    [
                        rng.next_u64() & 0xffff_ffff,
                        rng.next_u64() & 0xffff_ffff,
                        rng.below(65_536),
                        rng.below(65_536),
                        rng.below(256),
                    ]
                } else {
                    let rule = set.rule_at(rng.below(set.len() as u64) as usize);
                    let mut k = [0u64; 5];
                    for (d, f) in rule.fields.iter().enumerate() {
                        k[d] = rng.range_inclusive(f.lo, f.hi);
                    }
                    k
                }
            })
            .collect()
    }

    #[test]
    fn agrees_with_linear_search() {
        for seed in [1u64, 2] {
            let set = random_set(seed, 300);
            let tm = TupleMerge::build(&set);
            let tss = TupleSpaceSearch::build(&set);
            let oracle = LinearSearch::build(&set);
            for key in random_keys(seed + 100, 500, &set) {
                let want = oracle.classify(&key);
                assert_eq!(tm.classify(&key), want, "tm diverged on {key:?}");
                assert_eq!(tss.classify(&key), want, "tss diverged on {key:?}");
            }
        }
    }

    #[test]
    fn merging_uses_fewer_tables_than_tss() {
        let set = random_set(7, 500);
        let tm = TupleMerge::build(&set);
        let tss = TupleSpaceSearch::build(&set);
        assert!(
            tm.num_tables() <= tss.num_tables(),
            "tm {} vs tss {}",
            tm.num_tables(),
            tss.num_tables()
        );
    }

    #[test]
    fn collision_limit_triggers_splits() {
        // 300 exact dst-IP rules under /0 would share one bucket without
        // splitting; the limit must refine the table.
        let rules: Vec<Rule> = (0..300u32)
            .map(|i| FiveTuple::new().dst_prefix_raw(0x0a00_0000 | i, 32).into_rule(i, i))
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let tm = TupleMerge::with_config(&set, Default::default());
        assert!(tm.max_bucket() <= 40, "max bucket {}", tm.max_bucket());
        let oracle = LinearSearch::build(&set);
        for i in 0..300u64 {
            let key = [0, 0x0a00_0000 | i, 0, 0, 0];
            assert_eq!(tm.classify(&key), oracle.classify(&key));
        }
    }

    #[test]
    fn floor_prunes_consistently() {
        let set = random_set(3, 200);
        let tm = TupleMerge::build(&set);
        for key in random_keys(33, 300, &set) {
            let full = tm.classify(&key);
            for floor in [0u32, 10, 100, Priority::MAX] {
                let got = tm.classify_with_floor(&key, floor);
                let want = full.filter(|m| m.priority < floor);
                assert_eq!(got, want, "floor {floor} key {key:?}");
            }
        }
    }

    #[test]
    fn updates_match_rebuild() {
        let set = random_set(5, 200);
        let mut tm = TupleMerge::build(&set);
        assert_eq!(tm.generation(), 0, "build-time inserts must not count as updates");
        // One transaction: remove every third rule, add 20 new ones.
        let mut rules: Vec<Rule> = set.rules().to_vec();
        rules.retain(|r| r.id % 3 != 0);
        let mut batch = UpdateBatch::new();
        for id in 0..200u32 {
            if id % 3 == 0 {
                batch = batch.remove(id);
            }
        }
        for i in 0..20u32 {
            let rule =
                FiveTuple::new().dst_port_exact(40_000 + i as u16).into_rule(1_000 + i, 500 + i);
            rules.push(rule.clone());
            batch = batch.insert(rule);
        }
        let report = tm.apply(&batch);
        assert_eq!(report.removed, 67);
        assert_eq!(report.inserted, 20);
        assert_eq!(report.missing, 0);
        assert_eq!(tm.generation(), 1);
        let rebuilt = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let oracle = LinearSearch::build(&rebuilt);
        for key in random_keys(55, 400, &rebuilt) {
            assert_eq!(tm.classify(&key), oracle.classify(&key), "key {key:?}");
        }
        assert_eq!(tm.num_rules(), rebuilt.len());
        let mut exported = tm.export_rules();
        exported.sort_by_key(|r| r.id);
        assert_eq!(exported.len(), rebuilt.len());
    }

    #[test]
    fn upsert_reports_replaced_and_noop_batches_do_not_bump() {
        let set = random_set(31, 80);
        let mut tm = TupleMerge::build(&set);
        // Re-insert a live id: replacement, not removal.
        let r = tm.apply(&UpdateBatch::new().insert(set.rule_at(5).clone()));
        assert_eq!((r.inserted, r.replaced, r.removed), (1, 1, 0));
        assert_eq!(tm.num_rules(), 80);
        let g = tm.generation();
        // A non-empty batch of pure misses must not bump the generation
        // (regression: it used to, stampeding FlowCache invalidation).
        let r = tm.apply(
            &UpdateBatch::new()
                .remove(9_999)
                .modify(FiveTuple::new().dst_port_exact(1).into_rule(8_888, 0)),
        );
        // The modify inserts its new version even on a miss, so only the
        // pure-remove miss leaves content untouched.
        assert_eq!(r.missing, 2);
        assert!(r.changed(), "modify-of-absent still inserts");
        assert_eq!(tm.generation(), g + 1);
        let g = tm.generation();
        let r = tm.apply(&UpdateBatch::new().remove(9_999).remove(9_998));
        assert_eq!((r.missing, r.changed()), (2, false));
        assert_eq!(tm.generation(), g, "miss-only batch must not bump");
    }

    #[test]
    fn clone_then_update_leaves_original_untouched() {
        // The copy-on-write property snapshot pipelines rely on.
        let set = random_set(13, 150);
        let tm = TupleMerge::build(&set);
        let mut copy = tm.clone();
        copy.apply(&UpdateBatch::new().remove(0).remove(1).remove(2));
        assert_eq!(tm.num_rules(), 150);
        assert_eq!(copy.num_rules(), 147);
        assert_eq!(tm.generation(), 0);
        assert_eq!(copy.generation(), 1);
        let oracle = LinearSearch::build(&set);
        for key in random_keys(77, 200, &set) {
            assert_eq!(tm.classify(&key), oracle.classify(&key), "original drifted on {key:?}");
        }
    }

    #[test]
    fn memory_grows_with_rules() {
        let small = TupleMerge::build(&random_set(9, 50));
        let large = TupleMerge::build(&random_set(9, 2_000));
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn empty_set_classifies_nothing() {
        let set = RuleSet::new(FieldsSpec::five_tuple(), vec![]).unwrap();
        let tm = TupleMerge::build(&set);
        assert_eq!(tm.classify(&[1, 2, 3, 4, 5]), None);
        assert_eq!(tm.num_rules(), 0);
    }

    #[test]
    fn range_rules_survive_relaxation() {
        // Arbitrary port ranges whose covering prefix is /0 must still match.
        let rules = vec![
            FiveTuple::new().dst_port_range(100, 40_000).into_rule(0, 0),
            FiveTuple::new().dst_port_range(30_000, 65_000).into_rule(1, 1),
        ];
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let tm = TupleMerge::build(&set);
        assert_eq!(tm.classify(&[0, 0, 0, 35_000, 0]).unwrap().rule, 0);
        assert_eq!(tm.classify(&[0, 0, 0, 50_000, 0]).unwrap().rule, 1);
        assert_eq!(tm.classify(&[0, 0, 0, 99, 0]), None);
    }
}
