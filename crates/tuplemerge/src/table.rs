//! One tuple table: a hash map from masked header bits to rule buckets.

use crate::hasher::{FxBuild, FxMix};
use crate::tuple::Tuple;
use nm_common::memsize;
use nm_common::rule::{Priority, Rule};
use nm_common::ruleset::FieldsSpec;
use std::collections::HashMap;

/// A hash table holding every rule filed under one (possibly relaxed)
/// tuple. Buckets store indices into the engine's rule slab.
#[derive(Clone, Debug)]
pub struct Table {
    /// Mask lengths per field.
    pub lens: Tuple,
    map: HashMap<u64, Vec<u32>, FxBuild>,
    /// Lower bound on the best (numerically smallest) priority stored.
    /// Maintained as a running min on insert; removals never raise it, so it
    /// stays a valid bound for early exit (at worst one spurious probe).
    pub best_priority: Priority,
    count: usize,
}

impl Table {
    /// Creates an empty table for the given mask lengths.
    pub fn new(lens: Tuple) -> Self {
        Self { lens, map: HashMap::with_hasher(FxBuild), best_priority: Priority::MAX, count: 0 }
    }

    /// Hash of a rule's masked field values (uses each range's lower bound —
    /// identical to any other value in the range under a mask the rule fits).
    pub fn hash_rule(&self, rule: &Rule, spec: &FieldsSpec) -> u64 {
        let mut h = FxMix::new();
        for (d, f) in rule.fields.iter().enumerate() {
            h.write(self.lens.mask_value(d, f.lo, spec.bits(d)));
        }
        h.finish()
    }

    /// Hash of a packet key under this table's masks.
    #[inline]
    pub fn hash_key(&self, key: &[u64], spec: &FieldsSpec) -> u64 {
        let mut h = FxMix::new();
        for (d, &v) in key.iter().enumerate() {
            h.write(self.lens.mask_value(d, v, spec.bits(d)));
        }
        h.finish()
    }

    /// Inserts a slab index under `hash`; returns the bucket size after
    /// insertion (the collision-limit check).
    pub fn insert(&mut self, hash: u64, slab_idx: u32, priority: Priority) -> usize {
        self.best_priority = self.best_priority.min(priority);
        self.count += 1;
        let bucket = self.map.entry(hash).or_default();
        bucket.push(slab_idx);
        bucket.len()
    }

    /// Removes a slab index from its bucket; returns true if found.
    pub fn remove(&mut self, hash: u64, slab_idx: u32) -> bool {
        if let Some(bucket) = self.map.get_mut(&hash) {
            if let Some(pos) = bucket.iter().position(|&i| i == slab_idx) {
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.map.remove(&hash);
                }
                self.count -= 1;
                return true;
            }
        }
        false
    }

    /// The bucket for a hash, if any.
    #[inline]
    pub fn bucket(&self, hash: u64) -> Option<&[u32]> {
        self.map.get(&hash).map(Vec::as_slice)
    }

    /// Number of rules stored.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no rules are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Drains every slab index (table split).
    pub fn drain_all(&mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count);
        for (_, mut bucket) in self.map.drain() {
            out.append(&mut bucket);
        }
        self.count = 0;
        self.best_priority = Priority::MAX;
        out
    }

    /// Largest bucket size (diagnostics).
    pub fn max_bucket(&self) -> usize {
        self.map.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Index bytes: the hash map plus bucket storage (slab indices), the
    /// structures walked during lookup.
    pub fn memory_bytes(&self) -> usize {
        memsize::hashmap_bytes::<u64, Vec<u32>>(self.map.len())
            + self.map.values().map(|b| b.capacity() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldRange, FieldsSpec};

    fn rule_five(dst_port: (u16, u16), pri: Priority) -> Rule {
        Rule::new(
            pri,
            pri,
            vec![
                FieldRange::wildcard(32),
                FieldRange::wildcard(32),
                FieldRange::wildcard(16),
                FieldRange::new(dst_port.0 as u64, dst_port.1 as u64),
                FieldRange::wildcard(8),
            ],
        )
    }

    #[test]
    fn insert_probe_remove() {
        let spec = FieldsSpec::five_tuple();
        let rule = rule_five((443, 443), 3);
        let mut t = Table::new(Tuple(vec![0, 0, 0, 16, 0]));
        let h = t.hash_rule(&rule, &spec);
        assert_eq!(t.insert(h, 7, 3), 1);
        assert_eq!(t.best_priority, 3);
        assert_eq!(t.len(), 1);
        // A key with dst-port 443 probes the same bucket.
        let key = [1u64, 2, 3, 443, 6];
        assert_eq!(t.hash_key(&key, &spec), h);
        assert_eq!(t.bucket(h), Some(&[7u32][..]));
        assert!(t.remove(h, 7));
        assert!(!t.remove(h, 7));
        assert!(t.is_empty());
    }

    #[test]
    fn range_rule_and_in_range_keys_share_hash() {
        let spec = FieldsSpec::five_tuple();
        // 1024-2047 = one /6 block; table masks dst-port at /6.
        let rule = rule_five((1024, 2047), 0);
        let t = Table::new(Tuple(vec![0, 0, 0, 6, 0]));
        let h = t.hash_rule(&rule, &spec);
        for port in [1024u64, 1500, 2047] {
            assert_eq!(t.hash_key(&[0, 0, 0, port, 0], &spec), h);
        }
        assert_ne!(t.hash_key(&[0, 0, 0, 1023, 0], &spec), h);
    }

    #[test]
    fn drain_returns_everything() {
        let spec = FieldsSpec::five_tuple();
        let mut t = Table::new(Tuple(vec![0, 0, 0, 16, 0]));
        for i in 0..10u32 {
            let rule = rule_five((i as u16, i as u16), i);
            let h = t.hash_rule(&rule, &spec);
            t.insert(h, i, i);
        }
        let mut drained = t.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, (0..10).collect::<Vec<u32>>());
        assert!(t.is_empty());
    }
}
