//! Fast non-cryptographic hashing for tuple tables.
//!
//! SipHash (std's default) costs more than the probe it guards at these
//! key sizes. This is the FxHash mix (Firefox / rustc): one rotate, one
//! xor, one multiply per word — plenty of diffusion for masked header
//! fields, fully deterministic across runs and platforms.

/// Multiplicative constant from FxHash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Non-zero initial state so a stream of zero words still advances the hash
/// (with a zero start, `(0 ^ 0) * SEED == 0` absorbs any number of zeros).
const INIT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Streaming FxHash over `u64` words.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxMix {
    state: u64,
}

impl FxMix {
    /// Fresh state.
    #[inline]
    pub fn new() -> Self {
        Self { state: INIT }
    }

    /// Mixes one word in.
    #[inline]
    pub fn write(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    /// Final hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes a slice of masked field values.
#[inline]
pub fn hash_fields(vals: &[u64]) -> u64 {
    let mut h = FxMix::new();
    for &v in vals {
        h.write(v);
    }
    h.finish()
}

/// `std::hash::BuildHasher` adapter so `HashMap` can use FxMix directly
/// (keys are already-mixed u64 hashes; this finishes them cheaply).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuild;

impl std::hash::BuildHasher for FxBuild {
    type Hasher = FxState;
    #[inline]
    fn build_hasher(&self) -> FxState {
        FxState(0)
    }
}

/// Hasher state for [`FxBuild`].
#[derive(Clone, Copy, Debug)]
pub struct FxState(u64);

impl std::hash::Hasher for FxState {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0.rotate_left(5) ^ u64::from_le_bytes(buf)).wrapping_mul(SEED);
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(hash_fields(&[1, 2, 3]), hash_fields(&[1, 2, 3]));
        assert_ne!(hash_fields(&[1, 2, 3]), hash_fields(&[1, 2, 4]));
        assert_ne!(hash_fields(&[1, 2, 3]), hash_fields(&[3, 2, 1]));
        assert_ne!(hash_fields(&[0]), hash_fields(&[0, 0]));
    }

    #[test]
    fn hashmap_adapter_works() {
        let mut m: std::collections::HashMap<u64, u32, FxBuild> =
            std::collections::HashMap::with_hasher(FxBuild);
        for i in 0..1000u64 {
            m.insert(i, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&77], 77);
    }

    #[test]
    fn distribution_is_reasonable() {
        // 4K sequential keys into 64 buckets: no bucket > 4x the mean.
        let mut counts = [0u32; 64];
        for i in 0..4096u64 {
            counts[(hash_fields(&[i]) % 64) as usize] += 1;
        }
        let mean = 4096 / 64;
        assert!(counts.iter().all(|&c| c < mean * 4), "{counts:?}");
    }
}
