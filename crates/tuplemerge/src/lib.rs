//! # nm-tuplemerge — hash-based packet classification
//!
//! Two engines sharing one table substrate:
//!
//! * [`TupleSpaceSearch`] — the classic algorithm (Srinivasan, Suri,
//!   Varghese 1999): rules grouped by their per-field prefix-length tuple,
//!   one hash table per distinct tuple, every table probed per lookup.
//! * [`TupleMerge`] — Daly et al. 2019: tuples are *relaxed* (coarsened) so
//!   many related tuples share one table, cutting the number of probes; a
//!   collision limit splits tables that grow pathological buckets. This is
//!   the paper's strongest baseline and the remainder engine NuevoMatch
//!   pairs with for update support (§3.9).
//!
//! Arbitrary ranges (ports) are filed under their *covering prefix* — the
//! longest aligned block containing the whole range — so a table mask never
//! splits a rule's matches across buckets. Matching is still exact: every
//! bucket candidate is validated against the full rule box.
//!
//! Both engines keep a per-table best-priority bound, probe tables in
//! priority order, and stop as soon as no remaining table can beat the
//! current best — the "early termination" contract NuevoMatch relies on
//! (`classify_with_floor`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hasher;
pub mod table;
pub mod tuple;

mod engine;

pub use engine::{TupleMerge, TupleMergeConfig, TupleSpaceSearch};
