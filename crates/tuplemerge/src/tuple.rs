//! Tuple computation: from a rule's box to its per-field mask lengths.

use nm_common::range::FieldRange;
use nm_common::ruleset::FieldsSpec;

/// A tuple: the number of significant (masked-in) top bits per field.
///
/// Tuple Space Search files every rule under its *natural* tuple; TupleMerge
/// relaxes tuples so several natural tuples share a table.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Tuple(pub Vec<u8>);

impl Tuple {
    /// The natural tuple of a rule: per field, the covering-prefix length of
    /// its range (exact value → full width, wildcard → 0, arbitrary range →
    /// longest aligned block containing it).
    pub fn natural(fields: &[FieldRange], spec: &FieldsSpec) -> Tuple {
        Tuple(fields.iter().enumerate().map(|(d, r)| r.covering_prefix(spec.bits(d)).1).collect())
    }

    /// TupleMerge relaxation: IP-like fields (> 16 bits) are rounded down to
    /// a multiple of 4, port-like fields (9–16 bits) collapse to
    /// exact-or-wildcard, small fields (≤ 8 bits) keep their natural length.
    /// This caps the number of distinct tables at a few dozen for 5-tuple
    /// sets while keeping masks conservative (a table mask is always ≤ the
    /// natural length, so bucket lookups stay correct).
    pub fn relaxed(&self, spec: &FieldsSpec) -> Tuple {
        Tuple(
            self.0
                .iter()
                .enumerate()
                .map(|(d, &len)| {
                    let bits = spec.bits(d);
                    if bits > 16 {
                        len & !3
                    } else if bits > 8 {
                        if len == bits {
                            bits
                        } else {
                            0
                        }
                    } else {
                        len
                    }
                })
                .collect(),
        )
    }

    /// True when a rule with natural tuple `self` can live in a table with
    /// mask lengths `table`: the table masks no more bits than the rule
    /// guarantees are significant.
    pub fn fits_in(&self, table: &Tuple) -> bool {
        self.0.iter().zip(&table.0).all(|(&nat, &tab)| tab <= nat)
    }

    /// Masks a concrete key value for field `d` down to the tuple's top
    /// bits.
    #[inline]
    pub fn mask_value(&self, d: usize, v: u64, bits: u8) -> u64 {
        let len = self.0[d];
        if len == 0 {
            0
        } else {
            v >> (bits - len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::FieldsSpec;

    #[test]
    fn natural_tuple_five_tuple() {
        let spec = FieldsSpec::five_tuple();
        let fields = vec![
            FieldRange::from_prefix(0x0a0a_0000, 16, 32), // /16
            FieldRange::wildcard(32),                     // /0
            FieldRange::wildcard(16),                     // port wildcard
            FieldRange::exact(443),                       // exact port
            FieldRange::exact(6),                         // exact proto
        ];
        let t = Tuple::natural(&fields, &spec);
        assert_eq!(t.0, vec![16, 0, 0, 16, 8]);
    }

    #[test]
    fn natural_tuple_arbitrary_range_uses_covering_prefix() {
        let spec = FieldsSpec::five_tuple();
        let mut fields = vec![
            FieldRange::wildcard(32),
            FieldRange::wildcard(32),
            FieldRange::wildcard(16),
            FieldRange::new(1024, 65535), // covering prefix: /0
            FieldRange::wildcard(8),
        ];
        assert_eq!(Tuple::natural(&fields, &spec).0[3], 0);
        fields[3] = FieldRange::new(1024, 2047); // exactly the /6 block
        assert_eq!(Tuple::natural(&fields, &spec).0[3], 6);
    }

    #[test]
    fn relaxation_rounds_ips_and_collapses_ports() {
        let spec = FieldsSpec::five_tuple();
        let t = Tuple(vec![18, 31, 16, 9, 8]);
        let r = t.relaxed(&spec);
        assert_eq!(r.0, vec![16, 28, 16, 0, 8]);
        assert!(t.fits_in(&r));
    }

    #[test]
    fn mask_value_takes_top_bits() {
        let t = Tuple(vec![8]);
        assert_eq!(t.mask_value(0, 0xAB00_0000, 32), 0xAB);
        let w = Tuple(vec![0]);
        assert_eq!(w.mask_value(0, 0xAB00_0000, 32), 0);
    }

    #[test]
    fn keys_in_rule_range_mask_identically() {
        // The invariant table lookups rely on: every value inside a rule's
        // range masks to the rule's own masked value under any table tuple
        // the rule fits in.
        let spec = FieldsSpec::five_tuple();
        let r = FieldRange::new(1024, 2047);
        let fields = vec![
            FieldRange::wildcard(32),
            FieldRange::wildcard(32),
            FieldRange::wildcard(16),
            r,
            FieldRange::wildcard(8),
        ];
        let nat = Tuple::natural(&fields, &spec);
        let table = nat.relaxed(&spec);
        let rule_masked = table.mask_value(3, r.lo, 16);
        for v in [1024u64, 1500, 2047] {
            assert_eq!(table.mask_value(3, v, 16), rule_masked);
        }
    }
}
