//! Decision-tree substrate: arena, builder and lookup.
//!
//! Rules are viewed as hyper-rectangles; a tree node covers a box of the
//! field space and holds every rule overlapping that box. Interior nodes
//! refine the box (equal-width cuts or a binary threshold split); leaves
//! hold at most `binth` rules sorted by priority.
//!
//! ## Replication and spill lists
//!
//! A rule overlapping several children is *replicated* — the effect the
//! paper blames for decision trees' poor memory scaling (§2.1). Naive
//! replication is exponential for wildcard-heavy rules (a full-span rule
//! lands in *every* child at *every* level), so like mature HiCuts-family
//! implementations this builder keeps rules that cover a node's entire
//! extent in the cut/split dimension in a per-node **spill list**: they are
//! checked once while passing through the node instead of being copied into
//! all children. Partial overlaps still replicate — that is the real
//! CutSplit/NeuroCuts memory behaviour the Figure 13 experiment measures —
//! but the exponential wildcard case is contained. Spill lists are sorted
//! by priority and participate in the early-termination bound like leaves.

use nm_common::classifier::MatchResult;
use nm_common::memsize;
use nm_common::rule::{Priority, Rule};
use nm_common::ruleset::FieldsSpec;

/// What the build policy wants to do at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildAction {
    /// Equal-width cuts along `dim` into `2^bits` children.
    Cut {
        /// Dimension to cut.
        dim: usize,
        /// log2 of the number of children (1..=8).
        bits: u8,
    },
    /// Binary split along `dim` at a threshold chosen by the builder
    /// (weighted median of rule endpoints).
    Split {
        /// Dimension to split.
        dim: usize,
    },
    /// Stop refining; make a leaf.
    Leaf,
}

/// Context handed to the policy at each node.
pub struct NodeCtx<'a> {
    /// Node depth (root = 0).
    pub depth: usize,
    /// Rules overlapping this node's box.
    pub rules: &'a [u32],
    /// The node's box, `[lo, hi]` inclusive per dimension.
    pub bounds: &'a [(u64, u64)],
    /// Field schema.
    pub spec: &'a FieldsSpec,
    /// All rules by index (to inspect ranges).
    pub all: &'a [Rule],
}

/// A tree-construction policy: decides cut/split/leaf per node.
pub trait Policy {
    /// Chooses the action for a node. Cutting a span-1 dimension or a split
    /// that makes no progress falls back to a leaf automatically.
    fn decide(&self, ctx: &NodeCtx<'_>) -> BuildAction;
}

/// Build limits shared by every tree user.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum rules per leaf (`binth`); nodes at or below become leaves.
    pub binth: usize,
    /// Hard node budget — construction degrades to leaves beyond it
    /// (replication blow-up guard).
    pub max_nodes: usize,
    /// Hard depth limit.
    pub max_depth: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { binth: 8, max_nodes: 1_000_000, max_depth: 32 }
    }
}

/// A priority-sorted slice of the refs array.
#[derive(Clone, Copy, Debug, Default)]
struct RefSlice {
    start: u32,
    len: u32,
}

/// A spill/leaf scan queued by the advance pass of
/// [`DTree::descend_frontier`]: the slice to scan plus the priority bound
/// captured at its node's entry (per the per-key walk's semantics, the
/// bound is fixed for the whole scan).
#[derive(Clone, Copy)]
struct ScanState {
    key: u32,
    /// Absolute start of the slice in the ref arrays.
    pos: u32,
    /// Absolute end of the slice.
    end: u32,
    bound: Priority,
}

/// Reusable working state for [`DTree::descend_frontier`]: the in-flight
/// `(key, node)` frontier and the per-level scan queue. Callers keep one
/// across trees and chunks so a sweep allocates nothing per tree.
#[derive(Default)]
pub struct FrontierScratch {
    /// In-flight keys: `(key index, current node)`.
    live: Vec<(u32, u32)>,
    /// Spill/leaf scans queued by pass 1 for pass 2 of the same level.
    scans: Vec<ScanState>,
}

#[derive(Clone, Debug)]
enum Node {
    Cut {
        dim: u16,
        /// Box lower bound in `dim`.
        lo: u64,
        /// Child box width (ceil(span / children)).
        width: u64,
        /// First child node index; children are contiguous.
        first_child: u32,
        /// Number of children.
        children: u32,
        /// Rules spanning the whole box in `dim` (checked in passing).
        spill: RefSlice,
        /// Best (smallest) priority in the subtree incl. spill.
        best_priority: Priority,
    },
    Split {
        dim: u16,
        /// Keys ≤ threshold go left.
        threshold: u64,
        left: u32,
        right: u32,
        /// Rules straddling the threshold.
        spill: RefSlice,
        best_priority: Priority,
    },
    Leaf {
        refs: RefSlice,
        best_priority: Priority,
    },
}

/// A built decision tree over an owned copy of its rules.
///
/// The scan hot path is laid out flat and **ref-major**: `ref_pri` mirrors
/// `refs` so the priority-bound early exit reads one sequential array, and
/// `ref_boxes` stores each referenced rule's `[lo, hi]` per field inline at
/// the ref's position. A spill/leaf scan therefore touches two sequential
/// streams the hardware prefetcher tracks by itself — no pointer chase into
/// `Rule::fields` and no random hop per candidate, which is what made deep
/// fw-style spill scans memory-bound. The replication cost is bounded by
/// the same spill-list containment as `refs` itself. `rules` remains the
/// authoritative owned copy (ids, result priorities, `matches` for tests).
pub struct DTree {
    nodes: Vec<Node>,
    /// Rule indices, concatenated per leaf/spill; each slice sorted by
    /// priority so scans can stop at the first match or at the bound.
    refs: Vec<u32>,
    /// Priority of `rules[refs[p]]`, parallel to `refs` — the scan loop's
    /// bound test never touches a `Rule` until a candidate matches.
    ref_pri: Vec<Priority>,
    /// `[lo, hi]` per field of `rules[refs[p]]`, inline per ref position
    /// (`nfields * 2` words each) — the scan's second sequential stream.
    ref_boxes: Vec<u64>,
    nfields: usize,
    rules: Vec<Rule>,
    depth_max: usize,
}

/// Structural statistics (Figure 13 / NeuroCuts reward inputs).
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeStats {
    /// Interior + leaf node count.
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Total rule references (≥ rules; the excess is replication).
    pub refs: usize,
    /// Deepest node.
    pub max_depth: usize,
    /// Index bytes (nodes + refs).
    pub memory_bytes: usize,
}

impl DTree {
    /// Builds a tree over `rules` with the given policy.
    pub fn build(
        rules: Vec<Rule>,
        spec: &FieldsSpec,
        policy: &dyn Policy,
        cfg: &TreeConfig,
    ) -> DTree {
        let bounds_root: Vec<(u64, u64)> =
            (0..spec.len()).map(|d| (0, spec.max_value(d))).collect();
        let nfields = spec.len();
        let mut tree = DTree {
            nodes: Vec::new(),
            refs: Vec::new(),
            ref_pri: Vec::new(),
            ref_boxes: Vec::new(),
            nfields,
            rules,
            depth_max: 0,
        };
        let all_ids: Vec<u32> = (0..tree.rules.len() as u32).collect();
        tree.nodes.push(Node::Leaf { refs: RefSlice::default(), best_priority: Priority::MAX });
        tree.build_node(0, all_ids, bounds_root, 0, spec, policy, cfg);
        tree
    }

    /// Appends a priority-sorted ref slice and returns its descriptor.
    fn push_refs(&mut self, mut ids: Vec<u32>) -> RefSlice {
        ids.sort_by_key(|&i| (self.rules[i as usize].priority, i));
        let start = self.refs.len() as u32;
        let len = ids.len() as u32;
        for &i in &ids {
            let rule = &self.rules[i as usize];
            self.ref_pri.push(rule.priority);
            for f in &rule.fields {
                self.ref_boxes.push(f.lo);
                self.ref_boxes.push(f.hi);
            }
        }
        self.refs.extend_from_slice(&ids);
        RefSlice { start, len }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        &mut self,
        slot: usize,
        rule_ids: Vec<u32>,
        bounds: Vec<(u64, u64)>,
        depth: usize,
        spec: &FieldsSpec,
        policy: &dyn Policy,
        cfg: &TreeConfig,
    ) {
        self.depth_max = self.depth_max.max(depth);
        let best_priority = rule_ids
            .iter()
            .map(|&i| self.rules[i as usize].priority)
            .min()
            .unwrap_or(Priority::MAX);

        if rule_ids.len() <= cfg.binth
            || depth >= cfg.max_depth
            || self.nodes.len() >= cfg.max_nodes
        {
            let refs = self.push_refs(rule_ids);
            self.nodes[slot] = Node::Leaf { refs, best_priority };
            return;
        }

        let ctx = NodeCtx { depth, rules: &rule_ids, bounds: &bounds, spec, all: &self.rules };
        let action = policy.decide(&ctx);

        match action {
            BuildAction::Leaf => {
                let refs = self.push_refs(rule_ids);
                self.nodes[slot] = Node::Leaf { refs, best_priority };
            }
            BuildAction::Cut { dim, bits } => {
                let (lo, hi) = bounds[dim];
                let span = hi - lo + 1;
                let children = (1u64 << bits.clamp(1, 8)).min(span);
                if span <= 1 || children <= 1 {
                    let refs = self.push_refs(rule_ids);
                    self.nodes[slot] = Node::Leaf { refs, best_priority };
                    return;
                }
                let width = span.div_ceil(children);
                let mut spill_ids = Vec::new();
                let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); children as usize];
                for &id in &rule_ids {
                    let r = &self.rules[id as usize].fields[dim];
                    if r.lo <= lo && r.hi >= hi {
                        spill_ids.push(id);
                        continue;
                    }
                    let c0 = (r.lo.max(lo) - lo) / width;
                    let c1 = (r.hi.min(hi) - lo) / width;
                    for c in c0..=c1 {
                        buckets[c as usize].push(id);
                    }
                }
                let non_spill = rule_ids.len() - spill_ids.len();
                let progress = if spill_ids.is_empty() {
                    buckets.iter().any(|b| b.len() < non_spill)
                } else {
                    true
                };
                if non_spill == 0 || !progress {
                    let refs = self.push_refs(rule_ids);
                    self.nodes[slot] = Node::Leaf { refs, best_priority };
                    return;
                }
                let spill = self.push_refs(spill_ids);
                let first_child = self.nodes.len() as u32;
                for _ in 0..children {
                    self.nodes.push(Node::Leaf {
                        refs: RefSlice::default(),
                        best_priority: Priority::MAX,
                    });
                }
                self.nodes[slot] = Node::Cut {
                    dim: dim as u16,
                    lo,
                    width,
                    first_child,
                    children: children as u32,
                    spill,
                    best_priority,
                };
                drop(rule_ids);
                for (c, bucket) in buckets.into_iter().enumerate() {
                    let mut child_bounds = bounds.clone();
                    let c_lo = lo + c as u64 * width;
                    let c_hi = (c_lo + width - 1).min(hi);
                    child_bounds[dim] = (c_lo, c_hi);
                    self.build_node(
                        (first_child as usize) + c,
                        bucket,
                        child_bounds,
                        depth + 1,
                        spec,
                        policy,
                        cfg,
                    );
                }
            }
            BuildAction::Split { dim } => {
                let (lo, hi) = bounds[dim];
                if lo == hi {
                    let refs = self.push_refs(rule_ids);
                    self.nodes[slot] = Node::Leaf { refs, best_priority };
                    return;
                }
                // Weighted median of clamped upper endpoints.
                let mut endpoints: Vec<u64> = rule_ids
                    .iter()
                    .map(|&id| self.rules[id as usize].fields[dim].hi.min(hi))
                    .collect();
                endpoints.sort_unstable();
                let mut threshold = endpoints[endpoints.len() / 2].clamp(lo, hi - 1);
                if threshold == hi {
                    threshold = hi - 1;
                }
                let mut spill_ids = Vec::new();
                let mut left_ids = Vec::new();
                let mut right_ids = Vec::new();
                for &id in &rule_ids {
                    let r = &self.rules[id as usize].fields[dim];
                    let goes_left = r.lo.max(lo) <= threshold;
                    let goes_right = r.hi.min(hi) > threshold;
                    match (goes_left, goes_right) {
                        (true, true) => spill_ids.push(id),
                        (true, false) => left_ids.push(id),
                        (false, _) => right_ids.push(id),
                    }
                }
                let non_spill = left_ids.len() + right_ids.len();
                if non_spill == 0
                    || (left_ids.len() == rule_ids.len() || right_ids.len() == rule_ids.len())
                {
                    let refs = self.push_refs(rule_ids);
                    self.nodes[slot] = Node::Leaf { refs, best_priority };
                    return;
                }
                let spill = self.push_refs(spill_ids);
                let left = self.nodes.len() as u32;
                self.nodes
                    .push(Node::Leaf { refs: RefSlice::default(), best_priority: Priority::MAX });
                let right = self.nodes.len() as u32;
                self.nodes
                    .push(Node::Leaf { refs: RefSlice::default(), best_priority: Priority::MAX });
                self.nodes[slot] =
                    Node::Split { dim: dim as u16, threshold, left, right, spill, best_priority };
                let mut lb = bounds.clone();
                lb[dim] = (lo, threshold);
                let mut rb = bounds;
                rb[dim] = (threshold + 1, hi);
                self.build_node(left as usize, left_ids, lb, depth + 1, spec, policy, cfg);
                self.build_node(right as usize, right_ids, rb, depth + 1, spec, policy, cfg);
            }
        }
    }

    /// Scans a priority-sorted ref slice; returns the first (= best) match
    /// with priority below `bound`.
    ///
    /// Both the priority bound test and the candidate boxes read sequential
    /// ref-major streams, so a deep scan runs at hardware-prefetch speed and
    /// only a *match* touches the `Rule` itself (for its id).
    #[inline]
    fn scan_refs(&self, refs: RefSlice, key: &[u64], bound: Priority) -> Option<MatchResult> {
        let s = refs.start as usize;
        let e = s + refs.len as usize;
        let nf2 = self.nfields * 2;
        for p in s..e {
            let pri = self.ref_pri[p];
            if pri >= bound {
                return None;
            }
            let b = &self.ref_boxes[p * nf2..(p + 1) * nf2];
            let mut hit = true;
            for d in 0..self.nfields {
                if key[d] < b[2 * d] || key[d] > b[2 * d + 1] {
                    hit = false;
                    break;
                }
            }
            if hit {
                return Some(MatchResult::new(self.rules[self.refs[p] as usize].id, pri));
            }
        }
        None
    }

    /// Walks the tree for `key`; `floor` prunes subtrees that cannot beat it
    /// (pass `Priority::MAX` for an unconstrained lookup).
    #[inline]
    pub fn classify_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        let mut best: Option<MatchResult> = None;
        let mut idx = 0usize;
        loop {
            let bound = best.map_or(floor, |b| b.priority.min(floor));
            match &self.nodes[idx] {
                Node::Cut { dim, lo, width, first_child, children, spill, best_priority } => {
                    if bound <= *best_priority {
                        return best;
                    }
                    best = MatchResult::better(best, self.scan_refs(*spill, key, bound));
                    let v = key[*dim as usize];
                    if v < *lo {
                        return best;
                    }
                    let c = (v - lo) / width;
                    if c >= *children as u64 {
                        return best;
                    }
                    idx = *first_child as usize + c as usize;
                }
                Node::Split { dim, threshold, left, right, spill, best_priority } => {
                    if bound <= *best_priority {
                        return best;
                    }
                    best = MatchResult::better(best, self.scan_refs(*spill, key, bound));
                    idx = if key[*dim as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
                Node::Leaf { refs, best_priority } => {
                    if bound <= *best_priority {
                        return best;
                    }
                    best = MatchResult::better(best, self.scan_refs(*refs, key, bound));
                    return best;
                }
            }
        }
    }

    /// Level-synchronous batched descent (see [`crate::batched`] for the
    /// driver and the invariants): every key in `frontier` walks this tree
    /// simultaneously, all in-flight keys advancing **one tree level per
    /// outer iteration**, in two passes per level:
    ///
    /// 1. **Advance** — each surviving key's node (prefetched by the
    ///    previous level) is dereferenced, the bound/box retirement checks
    ///    run, the next node is computed and prefetched (both lines of the
    ///    straddling arena element), and any spill/leaf slice the key must
    ///    scan is queued with its head lines prefetched and the entry bound
    ///    captured. By the end of the pass, the *whole frontier's* children
    ///    and scan heads have prefetches in flight and none has been
    ///    dereferenced.
    /// 2. **Scan** — the queued slices run through [`DTree::scan_refs`]
    ///    with their captured bounds. Their head lines (priority array +
    ///    first box) were issued a whole pass earlier, so the short
    ///    `binth`-sized leaf scans — too brief for the hardware stream
    ///    prefetcher to engage — start warm instead of paying a cold burst
    ///    per key; longer spill scans continue down the two sequential
    ///    ref-major streams. (A fully lockstep entry-per-round variant was
    ///    tried here and lost to its own bookkeeping on L3-resident sets —
    ///    see the ROADMAP open item on DRAM-resident headroom.)
    ///
    /// One memory round-trip per level thus serves the whole batch, where
    /// the per-key walk pays one per key per level. Keys retire early
    /// (leave the frontier) as soon as they reach a leaf, walk off the
    /// covered box, or hit the subtree priority bound.
    ///
    /// Per key, the node sequence, spill/leaf scans and bound updates are
    /// exactly [`DTree::classify_floor`]'s with
    /// `floor = min(best[k].priority, floors[k])`: a key has at most one
    /// scan per level and a scan's bound is fixed at its node's entry (as
    /// in [`DTree::scan_refs`]), so deferring scans to the second pass
    /// cannot change any scan's outcome, and results merged into `best[k]`
    /// are bit-identical to the per-key walk (asserted across engines in
    /// `tests/it_batch.rs`).
    pub fn descend_frontier(
        &self,
        keys: &[u64],
        stride: usize,
        frontier: &[u32],
        floors: Option<&[Priority]>,
        best: &mut [Option<MatchResult>],
        scratch: &mut FrontierScratch,
    ) {
        let bound_of = |best: &[Option<MatchResult>], ki: usize| {
            let floor = floors.map_or(Priority::MAX, |f| f[ki]);
            best[ki].map_or(floor, |b| b.priority.min(floor))
        };
        let nf2 = self.nfields * 2;
        let live = &mut scratch.live;
        let scans = &mut scratch.scans;
        live.clear();
        // Every key starts at the root; the root is shared across the
        // frontier, so the first level needs no prefetch pass.
        live.extend(frontier.iter().map(|&k| (k, 0u32)));
        while !live.is_empty() {
            scans.clear();
            let mut w = 0usize;
            // Pass 1: advance the frontier one level.
            for r in 0..live.len() {
                let (k, node_idx) = live[r];
                let ki = k as usize;
                let key = &keys[ki * stride..(ki + 1) * stride];
                let bound = bound_of(best, ki);
                let (spill, subtree_best, next) = match &self.nodes[node_idx as usize] {
                    Node::Cut { dim, lo, width, first_child, children, spill, best_priority } => {
                        let v = key[*dim as usize];
                        let next = if v < *lo {
                            None
                        } else {
                            let c = (v - lo) / width;
                            (c < *children as u64).then(|| *first_child + c as u32)
                        };
                        (*spill, *best_priority, next)
                    }
                    Node::Split { dim, threshold, left, right, spill, best_priority } => {
                        let next = if key[*dim as usize] <= *threshold { *left } else { *right };
                        (*spill, *best_priority, Some(next))
                    }
                    Node::Leaf { refs, best_priority } => (*refs, *best_priority, None),
                };
                if bound <= subtree_best {
                    continue; // nothing in this subtree can beat the bound
                }
                if spill.len > 0 {
                    // Warm the slice's head: the priority line plus the
                    // first entry's box lines (two lines ≈ one 5-field
                    // box); the scan body streams on from there.
                    let start = spill.start as usize;
                    nm_common::prefetch::prefetch_index(&self.ref_pri, start);
                    nm_common::prefetch::prefetch_index(&self.ref_boxes, start * nf2);
                    nm_common::prefetch::prefetch_index(&self.ref_boxes, start * nf2 + 8);
                    scans.push(ScanState {
                        key: k,
                        pos: spill.start,
                        end: spill.start + spill.len,
                        bound,
                    });
                }
                if let Some(child) = next {
                    // Arena nodes straddle cache lines (48-byte elements),
                    // so warm the neighbour line too.
                    nm_common::prefetch::prefetch_index(&self.nodes, child as usize);
                    nm_common::prefetch::prefetch_index(&self.nodes, child as usize + 1);
                    live[w] = (k, child);
                    w += 1;
                }
            }
            live.truncate(w);
            // Pass 2: the queued spill/leaf scans. Heads are in flight from
            // pass 1; the scan body streams the two ref-major arrays.
            for sc in scans.iter() {
                let ki = sc.key as usize;
                let key = &keys[ki * stride..(ki + 1) * stride];
                let slice = RefSlice { start: sc.pos, len: sc.end - sc.pos };
                best[ki] = MatchResult::better(best[ki], self.scan_refs(slice, key, sc.bound));
            }
        }
    }

    /// Counts the work a lookup performs: nodes visited plus spill/leaf
    /// entries scanned — the NeuroCuts "classification time" proxy.
    pub fn access_cost(&self, key: &[u64]) -> usize {
        let mut idx = 0usize;
        let mut cost = 0usize;
        loop {
            cost += 1;
            match &self.nodes[idx] {
                Node::Cut { dim, lo, width, first_child, children, spill, .. } => {
                    cost += spill.len as usize;
                    let v = key[*dim as usize];
                    if v < *lo {
                        return cost;
                    }
                    let c = (v - lo) / width;
                    if c >= *children as u64 {
                        return cost;
                    }
                    idx = *first_child as usize + c as usize;
                }
                Node::Split { dim, threshold, left, right, spill, .. } => {
                    cost += spill.len as usize;
                    idx = if key[*dim as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
                Node::Leaf { refs, .. } => {
                    return cost + refs.len as usize;
                }
            }
        }
    }

    /// Structural statistics.
    pub fn stats(&self) -> TreeStats {
        let leaves = self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count();
        TreeStats {
            nodes: self.nodes.len(),
            leaves,
            refs: self.refs.len(),
            max_depth: self.depth_max,
            memory_bytes: self.memory_bytes(),
        }
    }

    /// Index bytes: arena nodes + refs + the parallel priority and inline
    /// box streams (rules themselves excluded, §5.2.1). The ref-major
    /// layout deliberately trades index memory for scan locality, so its
    /// replicated box copies are counted as index, not rule storage.
    pub fn memory_bytes(&self) -> usize {
        memsize::vec_bytes(&self.nodes)
            + memsize::vec_bytes(&self.refs)
            + memsize::vec_bytes(&self.ref_pri)
            + memsize::vec_bytes(&self.ref_boxes)
    }

    /// Best (smallest) priority stored anywhere in the tree — the root's
    /// subtree bound, used to order trees for cross-subset early exit.
    pub fn best_priority(&self) -> Priority {
        match self.nodes.first() {
            Some(Node::Cut { best_priority, .. })
            | Some(Node::Split { best_priority, .. })
            | Some(Node::Leaf { best_priority, .. }) => *best_priority,
            None => Priority::MAX,
        }
    }

    /// Number of rules owned by the tree (not refs — no replication count).
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::classifier::Classifier;
    use nm_common::{FieldRange, FieldsSpec, LinearSearch, RuleSet, SplitMix64};

    /// A trivial policy: always cut dim 0 by 2 bits until binth is reached.
    struct AlwaysCut;
    impl Policy for AlwaysCut {
        fn decide(&self, _ctx: &NodeCtx<'_>) -> BuildAction {
            BuildAction::Cut { dim: 0, bits: 2 }
        }
    }

    /// Round-robin splits.
    struct AlwaysSplit;
    impl Policy for AlwaysSplit {
        fn decide(&self, ctx: &NodeCtx<'_>) -> BuildAction {
            BuildAction::Split { dim: ctx.depth % ctx.spec.len() }
        }
    }

    fn random_rules(seed: u64, n: usize) -> Vec<Rule> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let lo0 = rng.below(60_000);
                let lo1 = rng.below(60_000);
                Rule::new(
                    i as u32,
                    i as u32,
                    vec![
                        FieldRange::new(lo0, lo0 + rng.below(4_000)),
                        FieldRange::new(lo1, lo1 + rng.below(4_000)),
                    ],
                )
            })
            .collect()
    }

    /// Mix in full wildcards — the replication stress case.
    fn rules_with_wildcards(seed: u64, n: usize) -> Vec<Rule> {
        let mut rules = random_rules(seed, n);
        let mut rng = SplitMix64::new(seed + 1);
        for i in 0..n / 4 {
            let idx = rng.below(n as u64) as usize;
            rules[idx].fields[i % 2] = FieldRange::wildcard(16);
        }
        rules
    }

    #[test]
    fn cut_tree_agrees_with_oracle() {
        let spec = FieldsSpec::uniform(2, 16);
        let rules = random_rules(1, 400);
        let set = RuleSet::new(spec.clone(), rules.clone()).unwrap();
        let oracle = LinearSearch::build(&set);
        let tree = DTree::build(rules, &spec, &AlwaysCut, &TreeConfig::default());
        let mut rng = SplitMix64::new(42);
        for _ in 0..2_000 {
            let key = [rng.below(65_536), rng.below(65_536)];
            assert_eq!(
                tree.classify_floor(&key, Priority::MAX),
                oracle.classify(&key),
                "key {key:?}"
            );
        }
    }

    #[test]
    fn split_tree_agrees_with_oracle() {
        let spec = FieldsSpec::uniform(2, 16);
        let rules = random_rules(2, 400);
        let set = RuleSet::new(spec.clone(), rules.clone()).unwrap();
        let oracle = LinearSearch::build(&set);
        let tree = DTree::build(rules, &spec, &AlwaysSplit, &TreeConfig::default());
        let mut rng = SplitMix64::new(43);
        for _ in 0..2_000 {
            let key = [rng.below(65_536), rng.below(65_536)];
            assert_eq!(tree.classify_floor(&key, Priority::MAX), oracle.classify(&key));
        }
    }

    #[test]
    fn wildcard_heavy_rules_stay_correct_and_small() {
        let spec = FieldsSpec::uniform(2, 16);
        let rules = rules_with_wildcards(7, 400);
        let set = RuleSet::new(spec.clone(), rules.clone()).unwrap();
        let oracle = LinearSearch::build(&set);
        let tree = DTree::build(rules, &spec, &AlwaysCut, &TreeConfig::default());
        let stats = tree.stats();
        // Spill lists must prevent exponential replication.
        assert!(stats.refs < 400 * 20, "replication exploded: {} refs", stats.refs);
        let mut rng = SplitMix64::new(44);
        for _ in 0..2_000 {
            let key = [rng.below(65_536), rng.below(65_536)];
            assert_eq!(tree.classify_floor(&key, Priority::MAX), oracle.classify(&key));
        }
    }

    #[test]
    fn floor_prunes_like_filter() {
        let spec = FieldsSpec::uniform(2, 16);
        let rules = rules_with_wildcards(3, 200);
        let tree = DTree::build(rules, &spec, &AlwaysCut, &TreeConfig::default());
        let mut rng = SplitMix64::new(45);
        for _ in 0..500 {
            let key = [rng.below(65_536), rng.below(65_536)];
            let full = tree.classify_floor(&key, Priority::MAX);
            for floor in [0u32, 50, 150] {
                assert_eq!(tree.classify_floor(&key, floor), full.filter(|m| m.priority < floor));
            }
        }
    }

    #[test]
    fn stats_reflect_structure() {
        let spec = FieldsSpec::uniform(2, 16);
        let rules = random_rules(4, 300);
        let tree = DTree::build(rules, &spec, &AlwaysCut, &TreeConfig::default());
        let s = tree.stats();
        assert!(s.nodes > 1);
        assert!(s.leaves > 0);
        assert!(s.refs >= 300, "every rule appears somewhere");
        assert!(s.memory_bytes > 0);
        assert_eq!(tree.num_rules(), 300);
        assert_eq!(tree.best_priority(), 0);
    }

    #[test]
    fn access_cost_counts_spills_and_leaves() {
        let spec = FieldsSpec::uniform(2, 16);
        let rules = rules_with_wildcards(8, 200);
        let tree = DTree::build(rules, &spec, &AlwaysCut, &TreeConfig::default());
        let cost = tree.access_cost(&[100, 100]);
        assert!(cost >= 1);
    }

    #[test]
    fn pathological_identical_rules_become_a_leaf() {
        let spec = FieldsSpec::uniform(2, 16);
        let rules: Vec<Rule> = (0..100)
            .map(|i| Rule::new(i, i, vec![FieldRange::wildcard(16), FieldRange::wildcard(16)]))
            .collect();
        let tree = DTree::build(rules, &spec, &AlwaysCut, &TreeConfig::default());
        assert_eq!(
            tree.classify_floor(&[5, 5], Priority::MAX).unwrap().rule,
            0,
            "highest priority duplicate wins"
        );
        // All-wildcard rules must not replicate at all.
        assert_eq!(tree.stats().refs, 100);
    }

    #[test]
    fn empty_tree() {
        let spec = FieldsSpec::uniform(2, 16);
        let tree = DTree::build(vec![], &spec, &AlwaysSplit, &TreeConfig::default());
        assert_eq!(tree.classify_floor(&[1, 2], Priority::MAX), None);
    }
}
