//! Tree-construction policies.

use crate::tree::{BuildAction, NodeCtx, Policy};

/// CutSplit's per-subset policy: FiCuts (equal-width cuts) along the
/// dimensions where the subset's rules are small, switching to HyperSplit
/// threshold splits once the node is small enough for splits to finish the
/// job cheaply.
pub struct CutSplitPolicy {
    /// Dimensions safe to cut (the subset's "small" dims). Empty for the
    /// big-big subset, which goes straight to splitting.
    pub cut_dims: Vec<usize>,
    /// Node size at which cutting hands over to splitting.
    pub split_below: usize,
    /// log2 of the fan-out per cut.
    pub cut_bits: u8,
}

impl CutSplitPolicy {
    /// The paper-configured policy for a subset: cut the listed dims with
    /// fan-out 16 (4 bits) until nodes hold ≤ `8 × binth` rules, then split.
    pub fn for_subset(cut_dims: Vec<usize>, binth: usize) -> Self {
        Self { cut_dims, split_below: binth * 8, cut_bits: 4 }
    }

    /// Picks the dimension with the most distinct endpoint values — the
    /// classic HiCuts/HyperSplit discrimination heuristic.
    fn most_discriminating_dim(ctx: &NodeCtx<'_>, candidates: &[usize]) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for &d in candidates {
            let (lo, hi) = ctx.bounds[d];
            if lo == hi {
                continue;
            }
            let mut endpoints: Vec<u64> = Vec::with_capacity(ctx.rules.len());
            for &id in ctx.rules {
                endpoints.push(ctx.all[id as usize].fields[d].hi.min(hi));
            }
            endpoints.sort_unstable();
            endpoints.dedup();
            let distinct = endpoints.len();
            if distinct > 1 && best.map_or(true, |(_, b)| distinct > b) {
                best = Some((d, distinct));
            }
        }
        best.map(|(d, _)| d)
    }
}

impl Policy for CutSplitPolicy {
    fn decide(&self, ctx: &NodeCtx<'_>) -> BuildAction {
        // Phase 1: FiCuts along small dims while the node is large.
        if ctx.rules.len() > self.split_below {
            // Cut the widest remaining small dim (most resolution left).
            if let Some(&dim) = self
                .cut_dims
                .iter()
                .filter(|&&d| ctx.bounds[d].1 > ctx.bounds[d].0)
                .max_by_key(|&&d| ctx.bounds[d].1 - ctx.bounds[d].0)
            {
                return BuildAction::Cut { dim, bits: self.cut_bits };
            }
        }
        // Phase 2: HyperSplit on whichever dim still discriminates.
        let all_dims: Vec<usize> = (0..ctx.spec.len()).collect();
        match Self::most_discriminating_dim(ctx, &all_dims) {
            Some(dim) => BuildAction::Split { dim },
            None => BuildAction::Leaf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DTree, TreeConfig};
    use nm_common::classifier::Classifier;
    use nm_common::rule::Priority;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch, RuleSet, SplitMix64};

    #[test]
    fn policy_cuts_then_splits() {
        // Many /24 src prefixes: cutting src-ip should dominate early.
        let mut rng = SplitMix64::new(1);
        let rules: Vec<_> = (0..500u32)
            .map(|i| {
                FiveTuple::new()
                    .src_prefix_raw(rng.next_u64() as u32, 24)
                    .dst_port_exact(rng.below(1024) as u16)
                    .into_rule(i, i)
            })
            .collect();
        let spec = FieldsSpec::five_tuple();
        let set = RuleSet::new(spec.clone(), rules.clone()).unwrap();
        let policy = CutSplitPolicy::for_subset(vec![0], 8);
        let tree = DTree::build(rules, &spec, &policy, &TreeConfig::default());
        let stats = tree.stats();
        assert!(stats.max_depth >= 1);
        let oracle = LinearSearch::build(&set);
        for _ in 0..1_000 {
            let key = [
                rng.next_u64() & 0xffff_ffff,
                rng.next_u64() & 0xffff_ffff,
                rng.below(65_536),
                rng.below(65_536),
                rng.below(256),
            ];
            assert_eq!(tree.classify_floor(&key, Priority::MAX), oracle.classify(&key));
        }
    }
}
