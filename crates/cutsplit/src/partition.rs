//! CutSplit's size-based pre-partitioning.
//!
//! A rule is *small* in a dimension when its range covers at most
//! `2^(bits − threshold)` values — i.e. it is at least a `/threshold`
//! prefix. Cutting along a dimension where every rule is small produces
//! little replication, which is CutSplit's whole premise: partition first so
//! each subset has dimensions that are safe to cut.

use nm_common::rule::Rule;
use nm_common::ruleset::FieldsSpec;

/// Which of the two IP dimensions a subset's rules are small in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Subset {
    /// Small in both dim0 and dim1 — cut both.
    SmallSmall,
    /// Small in dim0 only.
    SmallBig,
    /// Small in dim1 only.
    BigSmall,
    /// Big in both — cutting IPs would replicate heavily; split on the
    /// remaining fields instead.
    BigBig,
}

/// Result of partitioning: the four subsets in a fixed order.
#[derive(Debug, Default)]
pub struct Partition {
    /// `[SS, SB, BS, BB]` rule groups.
    pub groups: [Vec<Rule>; 4],
}

/// True when `rule` is small in `dim` under the `/threshold` criterion.
pub fn is_small(rule: &Rule, dim: usize, spec: &FieldsSpec, threshold: u8) -> bool {
    let bits = spec.bits(dim);
    if threshold >= bits {
        return rule.fields[dim].width() == 1;
    }
    rule.fields[dim].width() <= 1u64 << (bits - threshold)
}

/// Splits rules into the four smallness subsets over dimensions
/// `(dim0, dim1)` (source/destination IP for 5-tuple sets).
pub fn partition(
    rules: &[Rule],
    spec: &FieldsSpec,
    dim0: usize,
    dim1: usize,
    threshold: u8,
) -> Partition {
    let mut p = Partition::default();
    for rule in rules {
        let s0 = is_small(rule, dim0, spec, threshold);
        let s1 = is_small(rule, dim1, spec, threshold);
        let g = match (s0, s1) {
            (true, true) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (false, false) => 3,
        };
        p.groups[g].push(rule.clone());
    }
    p
}

impl Partition {
    /// Subset label for group index `g`.
    pub fn label(g: usize) -> Subset {
        match g {
            0 => Subset::SmallSmall,
            1 => Subset::SmallBig,
            2 => Subset::BigSmall,
            _ => Subset::BigBig,
        }
    }

    /// Total rules across groups.
    pub fn total(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldsSpec, FiveTuple};

    #[test]
    fn partitions_by_prefix_length() {
        let spec = FieldsSpec::five_tuple();
        let rules = vec![
            FiveTuple::new()
                .src_prefix([10, 0, 0, 0], 24)
                .dst_prefix([10, 0, 0, 0], 24)
                .into_rule(0, 0),
            FiveTuple::new().src_prefix([10, 0, 0, 0], 24).into_rule(1, 1), // dst wildcard
            FiveTuple::new().dst_prefix([10, 0, 0, 0], 24).into_rule(2, 2), // src wildcard
            FiveTuple::new().into_rule(3, 3),                               // both wildcard
        ];
        let p = partition(&rules, &spec, 0, 1, 16);
        assert_eq!(p.groups[0].len(), 1);
        assert_eq!(p.groups[1].len(), 1);
        assert_eq!(p.groups[2].len(), 1);
        assert_eq!(p.groups[3].len(), 1);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn threshold_boundary() {
        let spec = FieldsSpec::five_tuple();
        // A /16 prefix is exactly small at threshold 16; /15 is big.
        let r16 = FiveTuple::new().src_prefix([10, 1, 0, 0], 16).into_rule(0, 0);
        let r15 = FiveTuple::new().src_prefix([10, 0, 0, 0], 15).into_rule(1, 1);
        assert!(is_small(&r16, 0, &spec, 16));
        assert!(!is_small(&r15, 0, &spec, 16));
    }

    #[test]
    fn labels() {
        assert_eq!(Partition::label(0), Subset::SmallSmall);
        assert_eq!(Partition::label(3), Subset::BigBig);
    }
}
