//! Level-synchronous batched descent over a forest of decision trees —
//! the `Classifier::batch_lookup` implementation shared by CutSplit and
//! NeuroCuts (both are "smallness partition + one [`DTree`] per subset with
//! cross-subset early exit"; only the build policy differs).
//!
//! ## Why a frontier, not a per-key loop
//!
//! A single tree walk is a pointer chase: each level's node address depends
//! on the previous level's load, so a per-key loop exposes exactly one
//! outstanding cache miss at a time. The keys of a batch are independent,
//! though — their walks can miss *in parallel*. The descent here keeps a
//! **frontier** of `(key, node)` pairs and advances every in-flight key one
//! tree level per iteration ([`DTree::descend_frontier`]): as each key
//! computes its next node the line is prefetched, so the whole frontier's
//! children are in flight before any of them is dereferenced, and the next
//! level pays one memory round-trip for the batch instead of one per key.
//! This is the tree-engine counterpart of the RQ-RMI pipeline's prefetched
//! secondary-search windows, and it is what lifts remainder-heavy (fw-style)
//! rule-sets whose batched pipeline bottlenecked on the scalar descent.
//!
//! ## Invariants (bit-identity with the per-key walk)
//!
//! * **Same visit order per key.** A key visits the same nodes in the same
//!   order as `DTree::classify_floor`, scans the same spill/leaf slices
//!   under the same strict priority bound, and retires at the same point
//!   (leaf reached, box left, or `bound <= subtree best_priority`). Level
//!   interleaving across keys never reorders one key's own work.
//! * **Same tree order across the forest.** Trees are visited in ascending
//!   `best_priority` order with the same early exit: a tree is skipped for a
//!   key whose bound cannot be beaten, and the sweep stops when the frontier
//!   for a tree is empty (every later tree has a `best_priority` at least as
//!   large, so no key could re-enter).
//! * **Bounds only tighten.** `bound(k) = min(best[k].priority, floor(k))`
//!   is re-read each level from the merged running best, exactly as the
//!   per-key walk folds its candidate — all matches are strictly better
//!   than the bound at scan time, so floors need no final filter pass.
//!
//! `tests/it_batch.rs` property-checks the equivalence across engines,
//! batch sizes and floor patterns; the sweep binary
//! (`nm-bench --bin batch`) asserts it on every measured trace.

use crate::tree::{DTree, FrontierScratch};
use nm_common::classifier::MatchResult;
use nm_common::rule::Priority;

/// Batched classification over `trees` in `order` (ascending
/// `best_priority`), merging into `out`. Implements the
/// `Classifier::batch_lookup` contract: lengths are already validated,
/// `floors == None` means no key carries a floor, and `out` is overwritten.
///
/// Keys are processed in chunks of up to 512 — deep enough for the
/// frontier's prefetches to overlap, small enough that the per-chunk state
/// stays cache-resident however large the caller's batch is.
pub fn classify_forest_batch(
    trees: &[DTree],
    order: &[(Priority, u32)],
    keys: &[u64],
    stride: usize,
    floors: Option<&[Priority]>,
    out: &mut [Option<MatchResult>],
) {
    const CHUNK: usize = 512;
    let n = out.len();
    out.fill(None);
    let mut frontier: Vec<u32> = Vec::with_capacity(CHUNK.min(n));
    let mut scratch = FrontierScratch::default();
    let mut base = 0usize;
    // nm-lint: hotpath
    while base < n {
        let m = CHUNK.min(n - base);
        for &(tree_best, ti) in order {
            frontier.clear();
            for i in base..base + m {
                let floor = floors.map_or(Priority::MAX, |f| f[i]);
                let bound = out[i].map_or(floor, |b| b.priority.min(floor));
                if bound > tree_best {
                    frontier.push(i as u32);
                }
            }
            if frontier.is_empty() {
                // Trees are sorted by best_priority and bounds only
                // tighten: no later tree can beat any key's bound either.
                break;
            }
            trees[ti as usize].descend_frontier(keys, stride, &frontier, floors, out, &mut scratch);
        }
        base += m;
    }
    // nm-lint: end-hotpath
}
