//! # nm-cutsplit — decision-tree packet classification
//!
//! Two things live here:
//!
//! * [`tree`] — a reusable decision-tree substrate: an arena of *cut* nodes
//!   (HiCuts-style equal-width cuts along one dimension), *split* nodes
//!   (HyperSplit-style binary threshold splits) and priority-sorted leaves,
//!   driven by a pluggable [`tree::Policy`]. Each node carries the best
//!   priority of its subtree so tree walks support the paper's §4
//!   early-termination contract. `nm-neurocuts` builds its searched trees on
//!   this same substrate.
//! * [`CutSplit`] — the CutSplit classifier (Li et al., INFOCOM 2018): rules
//!   are pre-partitioned by *smallness* in the IP fields (SS/SL/LS/LL
//!   subsets), each subset gets a tree that first applies **Fi**xed
//!   **cuts** along the dimensions where its rules are small (little
//!   replication by construction) and switches to threshold **splits** near
//!   the bottom, with `binth = 8` rules per leaf as in the paper's
//!   evaluation (§5.1).
//!
//! Batched lookups take the [`batched`] level-synchronous descent: the
//! whole batch walks each tree as a prefetched frontier instead of one
//! pointer chase per key (NeuroCuts shares the same driver).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batched;
pub mod partition;
pub mod policy;
pub mod tree;

mod engine;

pub use engine::{CutSplit, CutSplitConfig};
