//! The CutSplit classifier: smallness partition + one tree per subset.

use crate::partition::{partition, Partition};
use crate::policy::CutSplitPolicy;
use crate::tree::{DTree, TreeConfig, TreeStats};
use nm_common::classifier::{Classifier, MatchResult};
use nm_common::rule::Priority;
use nm_common::ruleset::RuleSet;

/// CutSplit parameters (paper §5.1: `binth = 8`).
#[derive(Clone, Copy, Debug)]
pub struct CutSplitConfig {
    /// Maximum rules per leaf.
    pub binth: usize,
    /// Smallness threshold: a rule is small in an IP dim when it is at
    /// least a `/threshold` prefix (CutSplit uses 16).
    pub small_threshold: u8,
    /// Dimensions used for the smallness partition (src-ip, dst-ip for
    /// 5-tuple sets; for other schemas pass the two widest fields).
    pub ip_dims: (usize, usize),
    /// Tree build limits.
    pub tree: TreeConfig,
}

impl Default for CutSplitConfig {
    fn default() -> Self {
        Self { binth: 8, small_threshold: 16, ip_dims: (0, 1), tree: TreeConfig::default() }
    }
}

/// The CutSplit decision-tree classifier.
pub struct CutSplit {
    trees: Vec<DTree>,
    /// Trees ordered by their best priority, for early exit across subsets.
    order: Vec<(Priority, u32)>,
    total_rules: usize,
}

impl CutSplit {
    /// Builds with default parameters.
    pub fn build(set: &RuleSet) -> Self {
        Self::with_config(set, CutSplitConfig::default())
    }

    /// Builds with explicit parameters.
    pub fn with_config(set: &RuleSet, cfg: CutSplitConfig) -> Self {
        let spec = set.spec();
        let nf = spec.len();
        let (d0, d1) = if nf == 1 { (0, 0) } else { cfg.ip_dims };
        let parts: Partition = partition(set.rules(), spec, d0, d1, cfg.small_threshold);
        let mut tree_cfg = cfg.tree;
        tree_cfg.binth = cfg.binth;

        let mut trees = Vec::new();
        for (g, rules) in parts.groups.into_iter().enumerate() {
            if rules.is_empty() {
                continue;
            }
            let cut_dims = match g {
                0 => {
                    if d0 == d1 {
                        vec![d0]
                    } else {
                        vec![d0, d1]
                    }
                }
                1 => vec![d0],
                2 => vec![d1],
                _ => vec![], // big-big: split only
            };
            let policy = CutSplitPolicy::for_subset(cut_dims, cfg.binth);
            trees.push(DTree::build(rules, spec, &policy, &tree_cfg));
        }
        let mut order: Vec<(Priority, u32)> =
            trees.iter().enumerate().map(|(i, t)| (t.best_priority(), i as u32)).collect();
        order.sort_unstable();
        Self { trees, order, total_rules: set.len() }
    }

    /// Per-tree structural statistics.
    pub fn stats(&self) -> Vec<TreeStats> {
        self.trees.iter().map(DTree::stats).collect()
    }

    /// Number of subset trees actually built.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for CutSplit {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        self.classify_with_floor(key, Priority::MAX)
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        let mut best: Option<MatchResult> = None;
        for &(tree_best, ti) in &self.order {
            let bound = best.map_or(floor, |b| b.priority.min(floor));
            if bound <= tree_best {
                break;
            }
            let cand = self.trees[ti as usize].classify_floor(key, bound);
            best = MatchResult::better(best, cand);
        }
        best.filter(|m| m.priority < floor)
    }

    /// Level-synchronous batched descent over the subset trees (see
    /// [`crate::batched`]): the whole batch advances one tree level per
    /// iteration with the frontier's child nodes prefetched, instead of one
    /// full pointer chase per key.
    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        crate::batched::classify_forest_batch(&self.trees, &self.order, keys, stride, floors, out);
    }

    fn memory_bytes(&self) -> usize {
        self.trees.iter().map(DTree::memory_bytes).sum::<usize>()
            + self.order.len() * std::mem::size_of::<(Priority, u32)>()
    }

    fn name(&self) -> &'static str {
        "cs"
    }

    fn num_rules(&self) -> usize {
        self.total_rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch, SplitMix64};

    fn acl_like(seed: u64, n: usize) -> RuleSet {
        let mut rng = SplitMix64::new(seed);
        let rules: Vec<_> = (0..n)
            .map(|i| {
                let mut ft = FiveTuple::new();
                match rng.below(5) {
                    0 => {
                        ft = ft
                            .src_prefix_raw(rng.next_u64() as u32, 24 + rng.below(9) as u8)
                            .dst_prefix_raw(rng.next_u64() as u32, 24)
                            .proto_exact(6);
                    }
                    1 => {
                        ft = ft
                            .dst_prefix_raw(rng.next_u64() as u32, 16)
                            .dst_port_exact(rng.below(1024) as u16);
                    }
                    2 => {
                        ft = ft.src_prefix_raw(rng.next_u64() as u32, 8);
                    }
                    3 => {
                        let lo = rng.below(30_000) as u16;
                        ft = ft.dst_port_range(lo, lo + rng.below(20_000) as u16);
                    }
                    _ => {}
                }
                ft.into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    #[test]
    fn agrees_with_oracle() {
        for seed in [1u64, 5] {
            let set = acl_like(seed, 400);
            let cs = CutSplit::build(&set);
            let oracle = LinearSearch::build(&set);
            let mut rng = SplitMix64::new(seed + 7);
            for i in 0..1_500 {
                let key = if i % 2 == 0 {
                    [
                        rng.next_u64() & 0xffff_ffff,
                        rng.next_u64() & 0xffff_ffff,
                        rng.below(65_536),
                        rng.below(65_536),
                        rng.below(256),
                    ]
                } else {
                    let rule = set.rule_at(rng.below(set.len() as u64) as usize);
                    let mut k = [0u64; 5];
                    for (d, f) in rule.fields.iter().enumerate() {
                        k[d] = rng.range_inclusive(f.lo, f.hi);
                    }
                    k
                };
                assert_eq!(cs.classify(&key), oracle.classify(&key), "key {key:?}");
            }
        }
    }

    #[test]
    fn floor_equivalence() {
        let set = acl_like(3, 300);
        let cs = CutSplit::build(&set);
        let mut rng = SplitMix64::new(11);
        for _ in 0..300 {
            let key = [
                rng.next_u64() & 0xffff_ffff,
                rng.next_u64() & 0xffff_ffff,
                rng.below(65_536),
                rng.below(65_536),
                rng.below(256),
            ];
            let full = cs.classify(&key);
            for floor in [0u32, 100, 250] {
                assert_eq!(
                    cs.classify_with_floor(&key, floor),
                    full.filter(|m| m.priority < floor)
                );
            }
        }
    }

    #[test]
    fn builds_multiple_subset_trees() {
        let set = acl_like(9, 500);
        let cs = CutSplit::build(&set);
        assert!(cs.num_trees() >= 2, "expected several smallness subsets");
        assert!(cs.memory_bytes() > 0);
        assert_eq!(cs.num_rules(), 500);
    }

    #[test]
    fn single_field_schema_works() {
        // Stanford-like: one dst-ip field.
        let spec = FieldsSpec::single("dst-ip", 32);
        let mut rng = SplitMix64::new(4);
        let rows: Vec<_> = (0..300)
            .map(|_| {
                vec![nm_common::FieldRange::from_prefix(
                    rng.next_u64() & 0xffff_ffff,
                    8 + rng.below(25) as u8,
                    32,
                )]
            })
            .collect();
        let set = RuleSet::from_ranges(spec, rows).unwrap();
        let cs = CutSplit::build(&set);
        let oracle = LinearSearch::build(&set);
        for _ in 0..1_000 {
            let key = [rng.next_u64() & 0xffff_ffff];
            assert_eq!(cs.classify(&key), oracle.classify(&key));
        }
    }

    #[test]
    fn empty_set() {
        let set = RuleSet::new(FieldsSpec::five_tuple(), vec![]).unwrap();
        let cs = CutSplit::build(&set);
        assert_eq!(cs.classify(&[0, 0, 0, 0, 0]), None);
        assert_eq!(cs.num_trees(), 0);
    }
}
