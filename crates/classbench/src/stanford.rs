//! Stanford-backbone-like forwarding rule-sets.
//!
//! The paper's real-world workload is the Stanford backbone configuration:
//! four IP forwarding tables of roughly 180K rules, each matching on the
//! destination IP alone (§5.1.1, Figure 10, Table 2 last row). The public
//! dataset is a network snapshot, not a redistributable artifact, so this
//! module synthesises FIBs with the structural properties the experiments
//! consume: a single 32-bit field, prefix lengths distributed like a
//! backbone RIB (heavy /24 peak, a mid-size /16 shelf, sparse short
//! prefixes, a tail of host routes), and subtree locality from hierarchical
//! allocation.

use nm_common::{FieldRange, FieldsSpec, RuleSet, SplitMix64};
use std::collections::HashSet;

/// Prefix-length histogram modelled on public backbone RIB snapshots
/// (weights, not probabilities).
const LEN_WEIGHTS: &[(u8, f64)] = &[
    (8, 0.3),
    (10, 0.4),
    (12, 0.8),
    (14, 1.5),
    (16, 10.0),
    (18, 4.0),
    (20, 8.0),
    (22, 10.0),
    (24, 55.0),
    (26, 2.0),
    (28, 2.0),
    (30, 2.0),
    (32, 4.0),
];

/// Generates a Stanford-like FIB of `n` unique dst-IP prefixes,
/// deterministic in `seed`. Priorities follow position; in a real FIB
/// longest-prefix-match order would apply, but the paper treats these as
/// generic classification rules, and so do we.
pub fn stanford_fib(n: usize, seed: u64) -> RuleSet {
    let mut rng = SplitMix64::new(seed ^ 0x57a4_f0bd_0000_0001);
    let total: f64 = LEN_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut seen: HashSet<(u64, u8)> = HashSet::with_capacity(n * 2);
    let mut rows = Vec::with_capacity(n);
    // Allocation hierarchy: short prefixes (themselves rules) parent the
    // mid-length subnets, which parent most host routes — real FIBs nest
    // heavily, which is exactly what limits single-iSet coverage to ~58%
    // on the Stanford sets (Table 2, last row).
    let mut orgs: Vec<u64> = Vec::new(); // /16-ish parents
    let mut subnets: Vec<u64> = Vec::new(); // /24-ish parents

    let mut attempts = 0usize;
    while rows.len() < n && attempts < n * 30 + 1024 {
        attempts += 1;
        let mut draw = rng.f64() * total;
        let mut len = 24u8;
        for &(l, w) in LEN_WEIGHTS {
            if draw < w {
                len = l;
                break;
            }
            draw -= w;
        }
        let value = if len > 24 && !subnets.is_empty() && rng.f64() < 0.85 {
            // Host routes live under existing /24 subnets.
            subnets[rng.below(subnets.len() as u64) as usize] | (rng.next_u64() & 0xff)
        } else if len > 16 && !orgs.is_empty() && rng.f64() < 0.8 {
            // Subnets live under existing organisation blocks.
            let v = orgs[rng.below(orgs.len() as u64) as usize] | (rng.next_u64() & 0xffff);
            if len == 24 && subnets.len() < 16_384 {
                subnets.push(v & 0xffff_ff00);
            }
            v
        } else {
            let v = rng.next_u64() & 0xffff_ffff;
            if len <= 16 && orgs.len() < 8_192 {
                orgs.push(v & 0xffff_0000);
            } else if len == 24 && subnets.len() < 16_384 {
                subnets.push(v & 0xffff_ff00);
            }
            v
        };
        let base = FieldRange::from_prefix(value, len, 32).lo;
        if seen.insert((base, len)) {
            rows.push(vec![FieldRange::from_prefix(value, len, 32)]);
        }
    }
    RuleSet::from_ranges(FieldsSpec::single("dst-ip", 32), rows).expect("valid FIB")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_uniqueness() {
        let fib = stanford_fib(5_000, 1);
        assert_eq!(fib.len(), 5_000);
        assert_eq!(fib.num_fields(), 1);
        let mut c = fib.clone();
        assert_eq!(c.dedup(), 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(stanford_fib(500, 3).rules(), stanford_fib(500, 3).rules());
    }

    #[test]
    fn length_histogram_peaks_at_24() {
        let fib = stanford_fib(20_000, 2);
        let mut hist = [0usize; 33];
        for r in fib.rules() {
            let w = r.fields[0].width();
            let len = 32 - w.trailing_zeros() as usize;
            hist[len] += 1;
        }
        let max_len = (0..33).max_by_key(|&l| hist[l]).unwrap();
        assert_eq!(max_len, 24, "histogram: {hist:?}");
        // /16 shelf present.
        assert!(hist[16] > hist[12]);
    }

    #[test]
    fn single_iset_coverage_is_moderate() {
        // Table 2's Stanford row: one iSet covers ~58%, not ~84% like
        // ClassBench 500K — nested prefixes limit the non-overlapping set.
        let fib = stanford_fib(20_000, 4);
        let cov = nuevomatch::iset::coverage_curve(&fib, 3);
        assert!(cov[0] > 0.3 && cov[0] < 0.95, "1-iSet coverage {:.2}", cov[0]);
        assert!(cov[2] > cov[0]);
    }
}
