//! Parser for the original ClassBench filter format.
//!
//! Each line looks like:
//!
//! ```text
//! @192.168.1.0/24    10.0.0.0/8    0 : 65535    80 : 80    0x06/0xFF
//! ```
//!
//! (source prefix, destination prefix, source-port range, destination-port
//! range, protocol/mask, optionally followed by flag fields which we
//! ignore, as the paper's 5-field evaluation does). Rules keep file order
//! as priority — the ClassBench convention.

use nm_common::{Error, FieldRange, FieldsSpec, RuleSet};

/// Parses ClassBench filter text into a 5-tuple rule-set.
pub fn parse_classbench(text: &str) -> Result<RuleSet, Error> {
    let mut rows = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line = line.strip_prefix('@').ok_or_else(|| Error::Parse {
            line: lineno + 1,
            msg: "expected '@' rule prefix".into(),
        })?;
        let mut fields = line.split_whitespace();
        let err = |msg: &str| Error::Parse { line: lineno + 1, msg: msg.into() };

        let src = parse_prefix(fields.next().ok_or_else(|| err("missing src prefix"))?)
            .map_err(|m| err(&m))?;
        let dst = parse_prefix(fields.next().ok_or_else(|| err("missing dst prefix"))?)
            .map_err(|m| err(&m))?;
        let sp = parse_port_range(&mut fields).map_err(|m| err(&m))?;
        let dp = parse_port_range(&mut fields).map_err(|m| err(&m))?;
        let proto = parse_proto(fields.next().ok_or_else(|| err("missing protocol"))?)
            .map_err(|m| err(&m))?;
        rows.push(vec![src, dst, sp, dp, proto]);
    }
    RuleSet::from_ranges(FieldsSpec::five_tuple(), rows)
}

fn parse_prefix(s: &str) -> Result<FieldRange, String> {
    let (addr, len) = s.split_once('/').ok_or_else(|| format!("bad prefix '{s}'"))?;
    let len: u8 = len.parse().map_err(|_| format!("bad prefix length '{len}'"))?;
    if len > 32 {
        return Err(format!("prefix length {len} > 32"));
    }
    let mut value = 0u64;
    let mut octets = 0;
    for part in addr.split('.') {
        let o: u8 = part.parse().map_err(|_| format!("bad octet '{part}'"))?;
        value = (value << 8) | o as u64;
        octets += 1;
    }
    if octets != 4 {
        return Err(format!("expected 4 octets in '{addr}'"));
    }
    Ok(FieldRange::from_prefix(value, len, 32))
}

fn parse_port_range<'a>(fields: &mut impl Iterator<Item = &'a str>) -> Result<FieldRange, String> {
    let lo: u64 =
        fields.next().ok_or("missing port low")?.parse().map_err(|_| "bad port low".to_string())?;
    let colon = fields.next().ok_or("missing ':' in port range")?;
    if colon != ":" {
        return Err(format!("expected ':' got '{colon}'"));
    }
    let hi: u64 = fields
        .next()
        .ok_or("missing port high")?
        .parse()
        .map_err(|_| "bad port high".to_string())?;
    if lo > hi || hi > 65_535 {
        return Err(format!("bad port range {lo}:{hi}"));
    }
    Ok(FieldRange::new(lo, hi))
}

fn parse_proto(s: &str) -> Result<FieldRange, String> {
    let (value, mask) = s.split_once('/').ok_or_else(|| format!("bad protocol '{s}'"))?;
    let parse_hex = |t: &str| -> Result<u64, String> {
        let t = t.trim_start_matches("0x").trim_start_matches("0X");
        u64::from_str_radix(t, 16).map_err(|_| format!("bad hex '{t}'"))
    };
    let v = parse_hex(value)?;
    let m = parse_hex(mask)?;
    Ok(if m == 0 {
        FieldRange::wildcard(8)
    } else if m == 0xff {
        FieldRange::exact(v & 0xff)
    } else {
        return Err(format!("unsupported protocol mask 0x{m:x}"));
    })
}

/// Serialises a rule-set back to ClassBench format (round-trip tooling).
pub fn to_classbench(set: &RuleSet) -> String {
    use nm_common::fivetuple::*;
    let mut out = String::new();
    for rule in set.rules() {
        let f = &rule.fields;
        let (s_base, s_len) = f[SRC_IP].covering_prefix(32);
        let (d_base, d_len) = f[DST_IP].covering_prefix(32);
        let proto = if f[PROTO].is_wildcard(8) {
            "0x00/0x00".to_string()
        } else {
            format!("0x{:02X}/0xFF", f[PROTO].lo)
        };
        out.push_str(&format!(
            "@{}/{}\t{}/{}\t{} : {}\t{} : {}\t{}\n",
            format_ipv4(s_base),
            s_len,
            format_ipv4(d_base),
            d_len,
            f[SRC_PORT].lo,
            f[SRC_PORT].hi,
            f[DST_PORT].lo,
            f[DST_PORT].hi,
            proto
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::profile::AppKind;

    const SAMPLE: &str = "\
@192.168.1.0/24\t10.0.0.0/8\t0 : 65535\t80 : 80\t0x06/0xFF
@0.0.0.0/0\t10.1.2.3/32\t1024 : 65535\t53 : 53\t0x11/0xFF
# a comment line

@1.2.3.4/32\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00
";

    #[test]
    fn parses_sample() {
        let set = parse_classbench(SAMPLE).unwrap();
        assert_eq!(set.len(), 3);
        // Rule 0: src 192.168.1.0/24, dst-port 80, TCP.
        let key = [0xC0A8_0133u64, 0x0A00_0001, 5_000, 80, 6];
        assert_eq!(set.classify_scan(&key).unwrap().0, 0);
        // Rule 1: UDP to 10.1.2.3:53 from a high port.
        let key = [0x0101_0101u64, 0x0A01_0203, 2_000, 53, 17];
        assert_eq!(set.classify_scan(&key).unwrap().0, 1);
        // Rule 2: full wildcard.
        let key = [0x0102_0304u64, 0x0909_0909, 1, 1, 250];
        assert_eq!(set.classify_scan(&key).unwrap().0, 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_classbench("no-at-sign 1.2.3.4/32").is_err());
        assert!(parse_classbench("@1.2.3/24 0.0.0.0/0 0 : 1 0 : 1 0x06/0xFF").is_err());
        assert!(parse_classbench("@1.2.3.4/40 0.0.0.0/0 0 : 1 0 : 1 0x06/0xFF").is_err());
        assert!(parse_classbench("@1.2.3.4/24 0.0.0.0/0 9 : 1 0 : 1 0x06/0xFF").is_err());
        assert!(parse_classbench("@1.2.3.4/24 0.0.0.0/0 0 : 1 0 : 1 0x06/0x0F").is_err());
    }

    #[test]
    fn roundtrip_through_serialiser() {
        // Generated sets use prefixes + exact/wc/range ports; prefix fields
        // round-trip exactly, port ranges and protocol too.
        let set = generate(AppKind::Acl, 100, 5);
        let text = to_classbench(&set);
        let back = parse_classbench(&text).unwrap();
        assert_eq!(back.len(), set.len());
        for (a, b) in set.rules().iter().zip(back.rules()) {
            assert_eq!(a.fields, b.fields, "rule {} changed in round-trip", a.id);
        }
    }
}
