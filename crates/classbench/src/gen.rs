//! The rule-set generator.

use crate::profile::{AppKind, PortClass, Profile};
use nm_common::{FieldRange, FieldsSpec, RuleSet, SplitMix64};
use std::collections::HashSet;

/// Well-known ports favoured by the EM (exact-match) class, mirroring the
/// service mix of published ClassBench seeds.
const POPULAR_PORTS: &[u16] =
    &[80, 443, 53, 22, 25, 110, 143, 8080, 3306, 123, 161, 389, 445, 993, 995, 1433, 5060, 179];

/// Generates an `n`-rule ClassBench-style 5-tuple set, deterministic in
/// `seed`. Rules are unique boxes; priorities follow position (rule 0 wins
/// ties), the ClassBench convention.
///
/// Address-structure scaling: ClassBench grows a set from a fixed seed, so
/// small sets are dominated by the seed's structural (short-prefix,
/// overlapping) patterns while large sets are padded with unique long
/// prefixes — which is why the paper's Table 2 coverage climbs from ~20%
/// (1K) to ~84% (500K) for one iSet. We reproduce that with a size factor:
/// the larger the set, the more often address prefixes are forced to the
/// unique-host end of the distribution.
pub fn generate(kind: AppKind, n: usize, seed: u64) -> RuleSet {
    let profile = Profile::for_kind(kind);
    let mut rng = SplitMix64::new(seed ^ 0xc1a5_5be0_c4e0_0001);
    let mut rows: Vec<Vec<FieldRange>> = Vec::with_capacity(n);
    let mut seen: HashSet<Vec<FieldRange>> = HashSet::with_capacity(n * 2);

    // 1K -> ~0, 500K+ -> ~1.
    let size_factor = (((n.max(2) as f64).log10() - 3.0) / 2.7).clamp(0.0, 1.0);

    // Prefix pools provide address locality: a fraction of rules descends
    // from an existing subtree instead of a fresh random address.
    let mut src_pool: Vec<(u64, u8)> = Vec::new();
    let mut dst_pool: Vec<(u64, u8)> = Vec::new();

    let mut attempts = 0usize;
    while rows.len() < n && attempts < n * 20 + 1024 {
        attempts += 1;
        let mut src = sample_prefix(&profile.src_len, profile.reuse, &mut src_pool, &mut rng);
        let mut dst = sample_prefix(&profile.dst_len, profile.reuse, &mut dst_pool, &mut rng);
        // Size-driven uniqueness: promote a share of address pairs to /32 in
        // large sets; in small sets, collapse a share onto the seed's few
        // structural patterns (short, heavily overlapping prefixes).
        let draw = rng.f64();
        if draw < size_factor * 0.55 {
            src = FieldRange::exact(rng.next_u64() & 0xffff_ffff);
            dst = FieldRange::exact(rng.next_u64() & 0xffff_ffff);
        } else if draw > 1.0 - (1.0 - size_factor) * 0.5 {
            let pattern = rng.below(12);
            let len = 8 + (pattern % 3) as u8 * 4; // /8, /12, /16
            src = FieldRange::from_prefix(pattern << 28, len, 32);
            dst = FieldRange::from_prefix(((pattern * 7 + 3) % 12) << 28, len, 32);
        }
        let sp = sample_port(profile.src_port.sample(rng.f64()), &mut rng);
        let dp = sample_port(profile.dst_port.sample(rng.f64()), &mut rng);
        let proto = match profile.proto.sample(rng.f64()) {
            256 => FieldRange::wildcard(8),
            p => FieldRange::exact(p as u64),
        };
        let fields = vec![src, dst, sp, dp, proto];
        if seen.insert(fields.clone()) {
            rows.push(fields);
        }
    }
    RuleSet::from_ranges(FieldsSpec::five_tuple(), rows).expect("generator emits valid rules")
}

fn sample_prefix(
    lens: &crate::profile::Weighted<u8>,
    reuse: f64,
    pool: &mut Vec<(u64, u8)>,
    rng: &mut SplitMix64,
) -> FieldRange {
    let len = lens.sample(rng.f64());
    if len == 0 {
        return FieldRange::wildcard(32);
    }
    let value = if !pool.is_empty() && rng.f64() < reuse {
        // Descend from an existing subtree: share its top bits.
        let (base, blen) = pool[rng.below(pool.len() as u64) as usize];
        let shared = blen.min(len);
        let keep = (base >> (32 - shared)) << (32 - shared);
        keep | (rng.next_u64() & ((1u64 << (32 - shared)) - 1)) & 0xffff_ffff
    } else {
        rng.next_u64() & 0xffff_ffff
    };
    if pool.len() < 4_096 {
        pool.push((value, len));
    } else {
        let slot = rng.below(4_096) as usize;
        pool[slot] = (value, len);
    }
    FieldRange::from_prefix(value, len, 32)
}

fn sample_port(class: PortClass, rng: &mut SplitMix64) -> FieldRange {
    match class {
        PortClass::Wc => FieldRange::wildcard(16),
        PortClass::Hi => FieldRange::new(1024, 65_535),
        PortClass::Lo => FieldRange::new(0, 1_023),
        PortClass::Em => {
            let p = if rng.f64() < 0.7 {
                POPULAR_PORTS[rng.below(POPULAR_PORTS.len() as u64) as usize] as u64
            } else {
                rng.below(65_536)
            };
            FieldRange::exact(p)
        }
        PortClass::Ar => {
            let lo = rng.below(65_000);
            let hi = lo + 1 + rng.below(65_535 - lo);
            FieldRange::new(lo, hi)
        }
    }
}

/// The paper's 12-application suite at one size: ACL1-5, FW1-5, IPC1-2,
/// each with a distinct seed. Returns `(name, set)` pairs.
pub fn suite_12(n: usize, base_seed: u64) -> Vec<(String, RuleSet)> {
    let mut out = Vec::with_capacity(12);
    for i in 0..5 {
        out.push((format!("acl{}", i + 1), generate(AppKind::Acl, n, base_seed + i)));
    }
    for i in 0..5 {
        out.push((format!("fw{}", i + 1), generate(AppKind::Fw, n, base_seed + 100 + i)));
    }
    for i in 0..2 {
        out.push((format!("ipc{}", i + 1), generate(AppKind::Ipc, n, base_seed + 200 + i)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuevomatch::iset::coverage_curve;

    #[test]
    fn generates_requested_count_unique() {
        for kind in [AppKind::Acl, AppKind::Fw, AppKind::Ipc] {
            let set = generate(kind, 2_000, 1);
            assert_eq!(set.len(), 2_000);
            // from_ranges assigns priority = index; boxes are unique by
            // construction.
            let mut clone = set.clone();
            assert_eq!(clone.dedup(), 0, "{kind:?} produced duplicate boxes");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(AppKind::Acl, 500, 7);
        let b = generate(AppKind::Acl, 500, 7);
        assert_eq!(a.rules(), b.rules());
        let c = generate(AppKind::Acl, 500, 8);
        assert_ne!(a.rules(), c.rules());
    }

    #[test]
    fn acl_covers_better_than_fw() {
        // The profile property the paper's Table 2 depends on: ACL-style
        // sets need fewer iSets than FW-style sets.
        let acl = generate(AppKind::Acl, 3_000, 3);
        let fw = generate(AppKind::Fw, 3_000, 3);
        let acl_cov = coverage_curve(&acl, 2)[1];
        let fw_cov = coverage_curve(&fw, 2)[1];
        assert!(acl_cov > fw_cov, "expected ACL 2-iSet coverage ({acl_cov:.2}) > FW ({fw_cov:.2})");
        assert!(acl_cov > 0.6, "ACL coverage too low: {acl_cov:.2}");
    }

    #[test]
    fn suite_has_12_named_sets() {
        let suite = suite_12(200, 42);
        assert_eq!(suite.len(), 12);
        let names: Vec<&str> = suite.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"acl1") && names.contains(&"fw5") && names.contains(&"ipc2"));
        for (_, set) in &suite {
            assert_eq!(set.len(), 200);
        }
    }

    #[test]
    fn port_classes_produce_valid_ranges() {
        let mut rng = SplitMix64::new(9);
        for class in [PortClass::Wc, PortClass::Hi, PortClass::Lo, PortClass::Em, PortClass::Ar] {
            for _ in 0..200 {
                let r = sample_port(class, &mut rng);
                assert!(r.lo <= r.hi && r.hi <= 65_535);
            }
        }
    }
}
