//! # nm-classbench — rule-set workloads
//!
//! The paper evaluates on three workload families; this crate builds all of
//! them without external data:
//!
//! * [`generate`] — ClassBench-style synthetic 5-tuple rule-sets in three
//!   application profiles (ACL / FW / IPC), modelled on the seed statistics
//!   reported in the ClassBench paper (Taylor & Turner, ToN 2007): per-field
//!   prefix-length histograms, the five port classes (WC/HI/LO/AR/EM),
//!   protocol mix, and prefix-tree locality. What NuevoMatch's evaluation
//!   actually consumes is the *overlap structure* per field (it determines
//!   iSet coverage) and the *value diversity* (it determines how compressible
//!   the set is) — the profiles reproduce those properties: ACL ≈ many
//!   unique long prefixes (1–2 iSets cover nearly everything), FW ≈
//!   wildcard-heavy (worse coverage, bigger remainder), IPC in between.
//! * [`parse_classbench`] — a parser for the original ClassBench filter
//!   format, so real seed-generated files drop in unchanged.
//! * [`stanford_fib`] — Stanford-backbone-like single-field forwarding
//!   tables (~180K dst-IP prefixes, length histogram peaked at /24).
//! * [`lowdiv`] — low-diversity Cartesian rule blends for the partitioning
//!   effectiveness experiment (Table 3).
//!
//! Everything is deterministic in an explicit seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod lowdiv;
pub mod parse;
pub mod profile;
pub mod stanford;

pub use gen::{generate, suite_12};
pub use lowdiv::{blend_low_diversity, cartesian_rules};
pub use parse::parse_classbench;
pub use profile::{AppKind, Profile};
pub use stanford::stanford_fib;
