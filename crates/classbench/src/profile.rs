//! Application profiles: the distribution knobs behind each rule family.

/// The three ClassBench application classes (§5.1.1 of the NuevoMatch
//  paper: 12 rule-sets = ACL1-5, FW1-5, IPC1-2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Access Control List: long, mostly-unique address prefixes, exact
    /// destination ports, almost no wildcards.
    Acl,
    /// Firewall: wildcard-heavy addresses, port ranges, mixed protocols.
    Fw,
    /// IP Chain: between the two.
    Ipc,
}

/// Port-field classes from the ClassBench paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortClass {
    /// Wildcard `0:65535`.
    Wc,
    /// High ports `1024:65535`.
    Hi,
    /// Low ports `0:1023`.
    Lo,
    /// Arbitrary range.
    Ar,
    /// Exact match.
    Em,
}

/// Weighted discrete distribution (weights need not sum to 1).
#[derive(Clone, Debug)]
pub struct Weighted<T: Copy> {
    items: Vec<(T, f64)>,
    total: f64,
}

impl<T: Copy> Weighted<T> {
    /// Builds from `(item, weight)` pairs.
    pub fn new(items: Vec<(T, f64)>) -> Self {
        let total = items.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "weights must sum positive");
        Self { items, total }
    }

    /// Samples with a uniform draw `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> T {
        let mut acc = u * self.total;
        for &(item, w) in &self.items {
            if acc < w {
                return item;
            }
            acc -= w;
        }
        self.items.last().expect("non-empty").0
    }
}

/// All the distribution knobs for one application class.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Which family this is.
    pub kind: AppKind,
    /// Source-prefix length distribution.
    pub src_len: Weighted<u8>,
    /// Destination-prefix length distribution.
    pub dst_len: Weighted<u8>,
    /// Source-port class mix.
    pub src_port: Weighted<PortClass>,
    /// Destination-port class mix.
    pub dst_port: Weighted<PortClass>,
    /// Protocol mix (value, or 256 for wildcard).
    pub proto: Weighted<u16>,
    /// Probability that a rule reuses an existing prefix subtree (address
    /// locality — ClassBench's skewed branching).
    pub reuse: f64,
}

impl Profile {
    /// The canonical profile for an application kind.
    ///
    /// Length histograms follow the shapes reported for the published
    /// ClassBench seeds: ACL peaks hard at /32 and /24-plus on both address
    /// fields; FW mixes /0 wildcards with medium prefixes; IPC sits between.
    pub fn for_kind(kind: AppKind) -> Profile {
        match kind {
            AppKind::Acl => Profile {
                kind,
                src_len: Weighted::new(vec![
                    (0, 2.0),
                    (8, 1.0),
                    (16, 4.0),
                    (24, 13.0),
                    (28, 10.0),
                    (30, 15.0),
                    (32, 55.0),
                ]),
                dst_len: Weighted::new(vec![
                    (0, 1.0),
                    (8, 2.0),
                    (16, 7.0),
                    (24, 20.0),
                    (28, 15.0),
                    (30, 15.0),
                    (32, 40.0),
                ]),
                src_port: Weighted::new(vec![
                    (PortClass::Wc, 85.0),
                    (PortClass::Hi, 5.0),
                    (PortClass::Em, 8.0),
                    (PortClass::Ar, 2.0),
                ]),
                dst_port: Weighted::new(vec![
                    (PortClass::Em, 55.0),
                    (PortClass::Wc, 20.0),
                    (PortClass::Hi, 10.0),
                    (PortClass::Lo, 5.0),
                    (PortClass::Ar, 10.0),
                ]),
                proto: Weighted::new(vec![(6, 70.0), (17, 20.0), (1, 3.0), (256, 7.0)]),
                reuse: 0.35,
            },
            AppKind::Fw => Profile {
                kind,
                src_len: Weighted::new(vec![
                    (0, 25.0),
                    (8, 5.0),
                    (16, 15.0),
                    (24, 25.0),
                    (30, 10.0),
                    (32, 20.0),
                ]),
                dst_len: Weighted::new(vec![
                    (0, 20.0),
                    (8, 5.0),
                    (16, 15.0),
                    (24, 25.0),
                    (30, 10.0),
                    (32, 25.0),
                ]),
                src_port: Weighted::new(vec![
                    (PortClass::Wc, 60.0),
                    (PortClass::Hi, 15.0),
                    (PortClass::Lo, 5.0),
                    (PortClass::Ar, 10.0),
                    (PortClass::Em, 10.0),
                ]),
                dst_port: Weighted::new(vec![
                    (PortClass::Wc, 25.0),
                    (PortClass::Hi, 15.0),
                    (PortClass::Lo, 10.0),
                    (PortClass::Ar, 20.0),
                    (PortClass::Em, 30.0),
                ]),
                proto: Weighted::new(vec![(6, 50.0), (17, 25.0), (1, 5.0), (256, 20.0)]),
                reuse: 0.5,
            },
            AppKind::Ipc => Profile {
                kind,
                src_len: Weighted::new(vec![
                    (0, 8.0),
                    (8, 3.0),
                    (16, 10.0),
                    (24, 24.0),
                    (28, 10.0),
                    (30, 10.0),
                    (32, 35.0),
                ]),
                dst_len: Weighted::new(vec![
                    (0, 6.0),
                    (8, 3.0),
                    (16, 12.0),
                    (24, 24.0),
                    (28, 10.0),
                    (30, 10.0),
                    (32, 35.0),
                ]),
                src_port: Weighted::new(vec![
                    (PortClass::Wc, 75.0),
                    (PortClass::Hi, 8.0),
                    (PortClass::Em, 12.0),
                    (PortClass::Ar, 5.0),
                ]),
                dst_port: Weighted::new(vec![
                    (PortClass::Em, 40.0),
                    (PortClass::Wc, 25.0),
                    (PortClass::Hi, 12.0),
                    (PortClass::Lo, 8.0),
                    (PortClass::Ar, 15.0),
                ]),
                proto: Weighted::new(vec![(6, 60.0), (17, 25.0), (1, 4.0), (256, 11.0)]),
                reuse: 0.4,
            },
        }
    }

    /// Short name ("acl" / "fw" / "ipc").
    pub fn name(&self) -> &'static str {
        match self.kind {
            AppKind::Acl => "acl",
            AppKind::Fw => "fw",
            AppKind::Ipc => "ipc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_sampling_respects_weights() {
        let w = Weighted::new(vec![("a", 1.0), ("b", 3.0)]);
        let mut counts = (0usize, 0usize);
        for i in 0..10_000 {
            match w.sample(i as f64 / 10_000.0) {
                "a" => counts.0 += 1,
                _ => counts.1 += 1,
            }
        }
        // ~25% / 75%.
        assert!((counts.0 as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn edge_draws() {
        let w = Weighted::new(vec![(1u8, 1.0), (2, 1.0)]);
        assert_eq!(w.sample(0.0), 1);
        assert_eq!(w.sample(0.999_999_9), 2);
    }

    #[test]
    fn profiles_exist_for_all_kinds() {
        for kind in [AppKind::Acl, AppKind::Fw, AppKind::Ipc] {
            let p = Profile::for_kind(kind);
            assert_eq!(p.kind, kind);
            assert!(!p.name().is_empty());
        }
    }
}
