//! Low-diversity rule blends (the Table 3 workload).
//!
//! §5.3.3: "we synthetically generated a large rule-set as a Cartesian
//! product of a small number of values per field (no ranges). We blended
//! them into a 500K ClassBench rule-set, replacing randomly selected rules
//! with those from the Cartesian product, while keeping the total number of
//! rules the same." Low diversity bounds the largest iSet (§3.7), so these
//! blends stress the partitioning heuristic's ability to segregate
//! low-diversity rules into the remainder.

use nm_common::{FieldRange, FieldsSpec, Rule, RuleSet, SplitMix64};

/// Builds `n` exact-match rules from a Cartesian product over a small value
/// pool per field (`values_per_field` values each). Diversity per field is
/// `values_per_field / n`, which upper-bounds the largest iSet fraction.
pub fn cartesian_rules(n: usize, values_per_field: usize, seed: u64) -> Vec<Vec<FieldRange>> {
    let mut rng = SplitMix64::new(seed ^ 0x10_0d_1f);
    let spec = FieldsSpec::five_tuple();
    let pools: Vec<Vec<u64>> = (0..spec.len())
        .map(|d| {
            let max = spec.max_value(d);
            (0..values_per_field).map(|_| rng.below(max + 1)).collect()
        })
        .collect();
    (0..n)
        .map(|_| {
            pools
                .iter()
                .map(|pool| FieldRange::exact(pool[rng.below(pool.len() as u64) as usize]))
                .collect()
        })
        .collect()
}

/// Replaces a `fraction` of `base`'s rules (selected pseudo-randomly) with
/// Cartesian low-diversity rules, keeping the set size and the replaced
/// rules' priorities.
pub fn blend_low_diversity(
    base: &RuleSet,
    fraction: f64,
    values_per_field: usize,
    seed: u64,
) -> RuleSet {
    assert!((0.0..=1.0).contains(&fraction));
    let n = base.len();
    let k = (n as f64 * fraction).round() as usize;
    let low = cartesian_rules(k, values_per_field, seed);
    let mut rng = SplitMix64::new(seed ^ 0x000b_1e4d);
    let mut rules: Vec<Rule> = base.rules().to_vec();
    let mut replaced = vec![false; n];
    let mut li = 0usize;
    while li < k {
        let idx = rng.below(n as u64) as usize;
        if replaced[idx] {
            continue;
        }
        replaced[idx] = true;
        rules[idx] = Rule::new(rules[idx].id, rules[idx].priority, low[li].clone());
        li += 1;
    }
    RuleSet::new(base.spec().clone(), rules).expect("blend preserves schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::profile::AppKind;
    use nuevomatch::iset::coverage_curve;

    #[test]
    fn cartesian_has_low_diversity() {
        let rows = cartesian_rules(1_000, 10, 1);
        assert_eq!(rows.len(), 1_000);
        let set = RuleSet::from_ranges(FieldsSpec::five_tuple(), rows).unwrap();
        // Largest iSet can hold at most ~values_per_field rules per field.
        let cov = coverage_curve(&set, 1)[0];
        assert!(cov < 0.05, "1-iSet coverage should collapse: {cov}");
    }

    #[test]
    fn blend_keeps_size_and_degrades_coverage() {
        let base = generate(AppKind::Acl, 2_000, 2);
        let cov_base = coverage_curve(&base, 1)[0];
        let blended = blend_low_diversity(&base, 0.5, 12, 3);
        assert_eq!(blended.len(), base.len());
        let cov_blend = coverage_curve(&blended, 1)[0];
        assert!(
            cov_blend < cov_base,
            "blending must reduce coverage: {cov_base:.2} -> {cov_blend:.2}"
        );
        // Table 3's key property: coverage ≈ fraction of high-diversity
        // rules (the partitioner segregates the low-diversity blend).
        assert!(cov_blend < 0.75);
    }

    #[test]
    fn zero_fraction_is_identity() {
        let base = generate(AppKind::Ipc, 300, 4);
        let same = blend_low_diversity(&base, 0.0, 10, 5);
        assert_eq!(base.rules(), same.rules());
    }
}
