//! Tiny deterministic RNG for hot paths.
//!
//! Workload generators use `rand::StdRng` for rich distributions; inner loops
//! that just need a fast, reproducible stream (sampling responsibilities
//! during RQ-RMI training, hash seeds) use this SplitMix64, which is two
//! instructions-ish per draw and has no crate-version drift in its output.

/// SplitMix64 — the classic 64-bit mixer (Steele et al., used to seed
/// xoshiro). Deterministic across platforms and releases.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Uses the widening-multiply trick
    /// (Lemire); bias is negligible for our workloads. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SplitMix64::new(3);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..10_000 {
            let v = r.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean should be close to 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
