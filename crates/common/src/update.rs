//! Control-plane types: builders, update transactions and versioned
//! snapshots.
//!
//! The workspace splits every classifier's lifecycle into a **data plane**
//! (immutable lookup structures, shared by any number of reader threads)
//! and a **control plane** (rule updates and rebuilds, driven by a single
//! writer). This module holds the vocabulary both sides agree on:
//!
//! * [`EngineBuilder`] — how an engine is (re)constructed from a rule-set.
//!   Replaces the ad-hoc `build` functions / `make_remainder` closures: a
//!   builder is a *value* the control plane can hold on to and invoke again
//!   for every background retrain, not a one-shot closure.
//! * [`UpdateBatch`] / [`UpdateOp`] — a transaction of inserts, removes and
//!   modifies. Engines apply a whole batch through
//!   [`BatchUpdatable::apply`]; the ops inside one batch become visible
//!   together (trivially so for `&mut` engines, and via snapshot swap for
//!   `nuevomatch`'s `ClassifierHandle`).
//! * [`Snapshot`] — a generation-stamped immutable wrapper around any
//!   classifier, the unit the data plane publishes and readers pin.
//!
//! The paper's §3.9 update story maps onto these directly: a writer applies
//! [`UpdateBatch`]es (rules drift to the remainder), a background retrain
//! invokes the stored [`EngineBuilder`] and publishes a fresh [`Snapshot`]
//! under a new generation.

use crate::classifier::{Classifier, MatchResult};
use crate::rule::{Priority, Rule, RuleId};
use crate::ruleset::RuleSet;

/// Monotone data-plane version number. Bumps whenever the rule content an
/// engine serves changes (per update batch, and per retrain publish).
/// Generation `0` is reserved for engines that never change.
pub type Generation = u64;

/// Constructs a classifier from a rule-set.
///
/// This is the control plane's handle on *how* an engine is built: unlike a
/// `FnOnce` closure it can be stored and invoked repeatedly — once at system
/// bring-up and once per background retrain. Every plain `Fn(&RuleSet) -> E`
/// (including `build` fn items like `TupleMerge::build`) is an
/// `EngineBuilder` via the blanket impl, so call sites keep their shape:
///
/// ```
/// use nm_common::{EngineBuilder, FieldsSpec, LinearSearch, RuleSet};
/// let set = RuleSet::new(FieldsSpec::five_tuple(), vec![]).unwrap();
/// let builder = LinearSearch::build; // a builder value, reusable
/// let engine = builder.build_engine(&set);
/// let again = builder.build_engine(&set); // retrain path re-invokes it
/// # let _ = (engine, again);
/// ```
pub trait EngineBuilder: Send + Sync {
    /// The engine type this builder produces.
    type Engine: Classifier;

    /// Builds a fresh engine over `set` (ids and priorities preserved).
    fn build_engine(&self, set: &RuleSet) -> Self::Engine;
}

impl<F, E> EngineBuilder for F
where
    F: Fn(&RuleSet) -> E + Send + Sync,
    E: Classifier,
{
    type Engine = E;

    fn build_engine(&self, set: &RuleSet) -> E {
        self(set)
    }
}

// `&F` and `Box<F>` are covered by the blanket impl above (shared
// references to `Fn` closures are themselves `Fn`); `Arc` is not, and it is
// what control planes store so they can hand the builder to a background
// retrain thread without giving it up.
impl<B: EngineBuilder + ?Sized> EngineBuilder for std::sync::Arc<B> {
    type Engine = B::Engine;

    fn build_engine(&self, set: &RuleSet) -> Self::Engine {
        (**self).build_engine(set)
    }
}

/// One rule update (paper §3.9's taxonomy; action changes are external to
/// the classifier and have no structural op).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// A new rule. Upsert semantics on id: engines replace any live version
    /// carrying the same [`RuleId`] (use [`UpdateOp::Modify`] when the
    /// replacement is the point — it reports the removal explicitly).
    Insert(Rule),
    /// Removal by id.
    Remove(RuleId),
    /// Matching-set change: atomically replaces the rule with this id.
    Modify(Rule),
}

impl UpdateOp {
    /// The id the op targets.
    pub fn id(&self) -> RuleId {
        match self {
            UpdateOp::Insert(r) | UpdateOp::Modify(r) => r.id,
            UpdateOp::Remove(id) => *id,
        }
    }
}

/// A transaction of rule updates, applied as a unit.
///
/// Build one with the chaining helpers and hand it to
/// [`BatchUpdatable::apply`] (or `nuevomatch::ClassifierHandle::apply`,
/// which additionally guarantees concurrent readers observe either none or
/// all of the batch):
///
/// ```
/// use nm_common::{BatchUpdatable, FieldsSpec, FiveTuple, LinearSearch, RuleSet, UpdateBatch};
/// let set = RuleSet::new(FieldsSpec::five_tuple(), vec![]).unwrap();
/// let mut ls = LinearSearch::build(&set);
/// let batch = UpdateBatch::new()
///     .insert(FiveTuple::new().dst_port_exact(443).into_rule(0, 0))
///     .insert(FiveTuple::new().dst_port_exact(80).into_rule(1, 1))
///     .remove(7);
/// let report = ls.apply(&batch);
/// assert_eq!((report.inserted, report.removed, report.missing), (2, 0, 1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an insertion (chaining).
    pub fn insert(mut self, rule: Rule) -> Self {
        self.ops.push(UpdateOp::Insert(rule));
        self
    }

    /// Queues a removal (chaining).
    pub fn remove(mut self, id: RuleId) -> Self {
        self.ops.push(UpdateOp::Remove(id));
        self
    }

    /// Queues a matching-set change (chaining).
    pub fn modify(mut self, rule: Rule) -> Self {
        self.ops.push(UpdateOp::Modify(rule));
        self
    }

    /// Appends an already-constructed op.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of ops in the transaction.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the transaction holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<UpdateOp> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = UpdateOp>>(iter: I) -> Self {
        Self { ops: iter.into_iter().collect() }
    }
}

impl IntoIterator for UpdateBatch {
    type Item = UpdateOp;
    type IntoIter = std::vec::IntoIter<UpdateOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

/// Per-batch accounting returned by [`BatchUpdatable::apply`].
///
/// `removed` counts **true deletions** only ([`UpdateOp::Remove`] hits). A
/// live version displaced by an upsert ([`UpdateOp::Insert`] of an existing
/// id, or the remove half of a [`UpdateOp::Modify`] that found its target)
/// counts under `replaced` instead — the rule kept existing, its content
/// changed. Conflating the two over-reports removal rates in update
/// benchmarks and breaks `modify()`-style "did the target exist" returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Rules inserted (including the insert half of every modify).
    pub inserted: usize,
    /// Rules deleted by [`UpdateOp::Remove`] ops that found their target.
    pub removed: usize,
    /// Live versions displaced by an upsert: [`UpdateOp::Insert`] over an
    /// existing id, or the remove half of a [`UpdateOp::Modify`] hit.
    pub replaced: usize,
    /// Remove/modify ops whose target id was absent.
    pub missing: usize,
}

impl UpdateReport {
    /// Folds another report into this one (batch-of-batches accounting).
    pub fn absorb(&mut self, other: UpdateReport) {
        self.inserted += other.inserted;
        self.removed += other.removed;
        self.replaced += other.replaced;
        self.missing += other.missing;
    }

    /// True when the batch changed the served rule content — the condition
    /// under which [`crate::Classifier::generation`] must bump. A batch made
    /// entirely of misses (removes/modifies of absent ids) changes nothing,
    /// and bumping for it would stampede the caches layered above.
    pub fn changed(&self) -> bool {
        self.inserted > 0 || self.removed > 0 || self.replaced > 0
    }
}

/// Derives the standard [`BatchUpdatable::apply`] loop from an engine's
/// single-rule primitives: inserts are id-upserts (any live same-id version
/// is displaced first and counted as `replaced`), removes report presence,
/// and a modify is a replace-or-miss followed by an insert. Engines whose
/// batch semantics match (LinearSearch, TupleMerge) delegate here so the op
/// accounting has exactly one definition; the caller still owns its
/// generation bump (gate it on [`UpdateReport::changed`]).
pub fn apply_ops<T>(
    target: &mut T,
    batch: &UpdateBatch,
    mut insert: impl FnMut(&mut T, Rule),
    mut remove: impl FnMut(&mut T, RuleId) -> bool,
) -> UpdateReport {
    let mut report = UpdateReport::default();
    for op in batch.ops() {
        match op {
            UpdateOp::Insert(rule) => {
                // Upsert on id: displacing a live version is a replacement,
                // not a deletion — the id keeps existing.
                if remove(target, rule.id) {
                    report.replaced += 1;
                }
                insert(target, rule.clone());
                report.inserted += 1;
            }
            UpdateOp::Remove(id) => {
                if remove(target, *id) {
                    report.removed += 1;
                } else {
                    report.missing += 1;
                }
            }
            UpdateOp::Modify(rule) => {
                if remove(target, rule.id) {
                    report.replaced += 1;
                } else {
                    report.missing += 1;
                }
                insert(target, rule.clone());
                report.inserted += 1;
            }
        }
    }
    report
}

/// Classifiers that accept transactional rule updates (§3.9) — the update
/// path of the control-plane/data-plane split.
///
/// `apply` replaced the old per-op `Updatable` `&mut self` insert/remove
/// pair (removed after its one-release deprecation): a whole [`UpdateBatch`]
/// lands at once, which lets an engine amortise bookkeeping across the batch
/// and lets wrappers (snapshot handles, flow caches) make the batch atomic
/// with respect to readers. Implementations must bump
/// [`Classifier::generation`] at least once per batch whose report
/// [`UpdateReport::changed`] — and must *not* bump for a batch of pure
/// misses, which changes nothing a cache could be stale about.
pub trait BatchUpdatable: Classifier {
    /// Applies every op in order. With `&mut self` the batch is trivially
    /// atomic; wrappers that expose concurrent readers must not let a
    /// partially-applied batch become visible.
    fn apply(&mut self, batch: &UpdateBatch) -> UpdateReport;

    /// The live rules currently indexed, in no particular order. This is the
    /// control plane's escape hatch: retrains and snapshot persistence
    /// rebuild rule-sets from it.
    fn export_rules(&self) -> Vec<Rule>;
}

/// A generation-stamped immutable classifier — the unit the data plane
/// publishes and readers pin.
///
/// `Snapshot` only adds the stamp; all lookup entry points delegate to the
/// wrapped engine. Readers that need a *consistent* view across several
/// lookups hold one `Snapshot` (usually behind an `Arc`) and classify
/// against it; [`Classifier::generation`] then reports the pinned
/// generation, letting caches and oracles key off it.
#[derive(Clone, Debug)]
pub struct Snapshot<C> {
    engine: C,
    generation: Generation,
}

impl<C> Snapshot<C> {
    /// Stamps `engine` with `generation`.
    pub fn new(engine: C, generation: Generation) -> Self {
        Self { engine, generation }
    }

    /// The pinned generation.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &C {
        &self.engine
    }

    /// Unwraps the engine (control-plane use: copy-on-write update paths).
    pub fn into_engine(self) -> C {
        self.engine
    }
}

impl<C: Classifier> Classifier for Snapshot<C> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        self.engine.classify(key)
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.engine.classify_with_floor(key, floor)
    }

    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        self.engine.batch_lookup(keys, stride, floors, out);
    }

    fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }

    fn name(&self) -> &'static str {
        self.engine.name()
    }

    fn num_rules(&self) -> usize {
        self.engine.num_rules()
    }

    fn generation(&self) -> Generation {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fivetuple::FiveTuple;
    use crate::linear::LinearSearch;
    use crate::ruleset::FieldsSpec;

    fn rule(id: u32, port: u16) -> Rule {
        FiveTuple::new().dst_port_exact(port).into_rule(id, id)
    }

    #[test]
    fn batch_builder_orders_ops() {
        let b = UpdateBatch::new().insert(rule(1, 10)).remove(2).modify(rule(3, 30));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.ops()[0].id(), 1);
        assert_eq!(b.ops()[1], UpdateOp::Remove(2));
        assert_eq!(b.ops()[2].id(), 3);
    }

    #[test]
    fn closure_and_fn_item_are_builders() {
        let set = RuleSet::new(FieldsSpec::five_tuple(), vec![rule(0, 80)]).unwrap();
        // fn item.
        let b1 = LinearSearch::build;
        assert_eq!(b1.build_engine(&set).num_rules(), 1);
        // Capturing closure (must be `Fn`, reusable).
        let copies = 2;
        let b2 = move |s: &RuleSet| {
            let _ = copies;
            LinearSearch::build(s)
        };
        assert_eq!(b2.build_engine(&set).num_rules(), 1);
        assert_eq!(b2.build_engine(&set).num_rules(), 1);
        // Boxed trait object (what control planes store).
        let boxed: Box<dyn EngineBuilder<Engine = LinearSearch>> = Box::new(LinearSearch::build);
        assert_eq!(boxed.build_engine(&set).num_rules(), 1);
    }

    #[test]
    fn snapshot_delegates_and_stamps() {
        let set = RuleSet::new(FieldsSpec::five_tuple(), vec![rule(0, 80), rule(1, 443)]).unwrap();
        let snap = Snapshot::new(LinearSearch::build(&set), 42);
        assert_eq!(snap.generation(), 42);
        assert_eq!(Classifier::generation(&snap), 42);
        let key = [0u64, 0, 0, 443, 0];
        assert_eq!(snap.classify(&key).unwrap().rule, 1);
        assert_eq!(snap.classify(&key), snap.engine().classify(&key));
        assert_eq!(snap.num_rules(), 2);
    }

    #[test]
    fn report_absorb_accumulates() {
        let mut a = UpdateReport { inserted: 1, removed: 2, replaced: 1, missing: 0 };
        a.absorb(UpdateReport { inserted: 3, removed: 0, replaced: 2, missing: 5 });
        assert_eq!(a, UpdateReport { inserted: 4, removed: 2, replaced: 3, missing: 5 });
    }

    #[test]
    fn report_changed_ignores_misses() {
        assert!(!UpdateReport::default().changed());
        assert!(!UpdateReport { missing: 3, ..Default::default() }.changed());
        assert!(UpdateReport { inserted: 1, ..Default::default() }.changed());
        assert!(UpdateReport { removed: 1, ..Default::default() }.changed());
        assert!(UpdateReport { replaced: 1, ..Default::default() }.changed());
    }

    #[test]
    fn apply_ops_distinguishes_replacement_from_deletion() {
        let set = RuleSet::new(FieldsSpec::five_tuple(), vec![rule(0, 80), rule(1, 443)]).unwrap();
        let mut ls = LinearSearch::build(&set);
        // Insert over a live id is a replacement (upsert), not a removal.
        let r = ls.apply(&UpdateBatch::new().insert(rule(0, 8080)));
        assert_eq!((r.inserted, r.removed, r.replaced, r.missing), (1, 0, 1, 0));
        assert_eq!(ls.num_rules(), 2, "upsert must not duplicate the id");
        assert_eq!(ls.classify(&[0, 0, 0, 8080, 0]).unwrap().rule, 0);
        assert_eq!(ls.classify(&[0, 0, 0, 80, 0]), None, "stale version must die");
        // A modify hit is also a replacement; a true delete is `removed`.
        let r = ls.apply(&UpdateBatch::new().modify(rule(1, 444)).remove(0).remove(99));
        assert_eq!((r.inserted, r.removed, r.replaced, r.missing), (1, 1, 1, 1));
    }
}
