//! Inclusive `u64` intervals — the atom every rule field lowers to.
//!
//! Prefixes (`10.10.0.0/16`), port ranges (`1024–65535`), exact values and
//! wildcards are all represented as a closed interval `[lo, hi]`. Keeping a
//! single representation lets the iSet partitioner, the RQ-RMI trainer and
//! every baseline share one overlap/containment vocabulary.

/// An inclusive interval `[lo, hi]` over a `u64` field domain.
///
/// Invariant: `lo <= hi`. Constructors uphold it; [`FieldRange::new`] panics
/// on violation so corrupted rules never propagate silently.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FieldRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl core::fmt::Debug for FieldRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl FieldRange {
    /// Creates `[lo, hi]`. Panics if `lo > hi`.
    #[inline]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "FieldRange requires lo <= hi, got [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// A range matching exactly one value.
    #[inline]
    pub fn exact(v: u64) -> Self {
        Self { lo: v, hi: v }
    }

    /// The full domain of a `bits`-wide field (a wildcard).
    #[inline]
    pub fn wildcard(bits: u8) -> Self {
        Self { lo: 0, hi: domain_max(bits) }
    }

    /// Builds a range from a prefix: `value/prefix_len` over a `bits`-wide
    /// field. `prefix_len == 0` is the wildcard; `prefix_len == bits` is an
    /// exact match.
    ///
    /// Bits of `value` below the prefix are ignored, so
    /// `from_prefix(0x0a0a_0000, 16, 32)` and `from_prefix(0x0a0a_ffff, 16, 32)`
    /// produce the same range.
    #[inline]
    pub fn from_prefix(value: u64, prefix_len: u8, bits: u8) -> Self {
        assert!(prefix_len <= bits, "prefix_len {prefix_len} > field width {bits}");
        assert!(bits <= 64);
        if prefix_len == 0 {
            return Self::wildcard(bits);
        }
        let host_bits = bits - prefix_len;
        let base = if host_bits >= 64 { 0 } else { (value >> host_bits) << host_bits };
        let hi = base | low_mask(host_bits);
        Self { lo: base, hi }
    }

    /// Number of values covered; saturates at `u64::MAX` for the full 64-bit
    /// domain (which has 2^64 values).
    #[inline]
    pub fn width(&self) -> u64 {
        (self.hi - self.lo).saturating_add(1)
    }

    /// True iff `v` lies inside the interval.
    #[inline(always)]
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True iff the two intervals share at least one value.
    #[inline(always)]
    pub fn overlaps(&self, other: &FieldRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// True iff `other` is fully inside `self`.
    #[inline]
    pub fn covers(&self, other: &FieldRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection, or `None` when disjoint.
    #[inline]
    pub fn intersect(&self, other: &FieldRange) -> Option<FieldRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(FieldRange { lo, hi })
    }

    /// True iff the range is the whole `bits`-wide domain.
    #[inline]
    pub fn is_wildcard(&self, bits: u8) -> bool {
        self.lo == 0 && self.hi == domain_max(bits)
    }

    /// True iff the range is exactly one aligned prefix block; returns the
    /// prefix length if so.
    ///
    /// Used by hash-based classifiers (TSS/TupleMerge) which key tables on
    /// prefix lengths.
    pub fn as_prefix(&self, bits: u8) -> Option<u8> {
        let w = self.width();
        if !w.is_power_of_two() {
            return None;
        }
        let host_bits = w.trailing_zeros() as u8;
        if host_bits > bits {
            return None;
        }
        (self.lo.trailing_zeros() as u8 >= host_bits || host_bits == 0).then_some(bits - host_bits)
    }

    /// Decomposes an arbitrary range into the minimal set of aligned prefix
    /// blocks `(value, prefix_len)` covering it (classic range-to-prefix
    /// expansion; at most `2*bits - 2` blocks).
    pub fn to_prefixes(&self, bits: u8) -> Vec<(u64, u8)> {
        let mut out = Vec::new();
        let mut lo = self.lo;
        let end = self.hi;
        loop {
            // Largest aligned block starting at `lo` that does not overshoot `end`.
            let max_align = if lo == 0 { bits } else { lo.trailing_zeros().min(bits as u32) as u8 };
            let mut host = max_align;
            loop {
                let block_hi = if host >= 64 { u64::MAX } else { lo + (low_mask(host)) };
                if block_hi <= end {
                    out.push((lo, bits - host));
                    if block_hi == end || block_hi == domain_max(bits) {
                        return out;
                    }
                    lo = block_hi + 1;
                    break;
                }
                host -= 1;
            }
        }
    }

    /// The "longest covering prefix" of the range: the longest prefix length
    /// `p` such that one aligned `p`-block covers the whole range. Always
    /// exists (`p == 0` covers everything). Hash classifiers use this to file
    /// non-prefix ranges under a coarser tuple.
    pub fn covering_prefix(&self, bits: u8) -> (u64, u8) {
        // Find the number of host bits needed so one block spans [lo, hi].
        let mut host = 0u8;
        while host < bits {
            let base = (self.lo >> host) << host;
            let hi = base | low_mask(host);
            if hi >= self.hi {
                return (base, bits - host);
            }
            host += 1;
        }
        (0, 0)
    }
}

/// The largest value of a `bits`-wide domain (`2^bits - 1`).
#[inline]
pub fn domain_max(bits: u8) -> u64 {
    debug_assert!(bits <= 64);
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// A mask with the low `n` bits set.
#[inline]
pub fn low_mask(n: u8) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_wildcard() {
        let e = FieldRange::exact(7);
        assert!(e.contains(7) && !e.contains(8));
        assert_eq!(e.width(), 1);
        let w = FieldRange::wildcard(16);
        assert_eq!(w.lo, 0);
        assert_eq!(w.hi, 65535);
        assert!(w.is_wildcard(16));
        assert!(!w.is_wildcard(17));
    }

    #[test]
    fn from_prefix_basic() {
        // 10.10.0.0/16
        let ip = (10u64 << 24) | (10 << 16);
        let r = FieldRange::from_prefix(ip, 16, 32);
        assert_eq!(r.lo, ip);
        assert_eq!(r.hi, ip | 0xffff);
        assert_eq!(r.as_prefix(32), Some(16));
        // low bits of value are ignored
        let r2 = FieldRange::from_prefix(ip | 0xabcd, 16, 32);
        assert_eq!(r, r2);
        // /0 is the wildcard
        assert!(FieldRange::from_prefix(1234, 0, 32).is_wildcard(32));
        // /32 is exact
        assert_eq!(FieldRange::from_prefix(ip, 32, 32), FieldRange::exact(ip));
    }

    #[test]
    fn overlap_and_intersect() {
        let a = FieldRange::new(10, 20);
        let b = FieldRange::new(20, 30);
        let c = FieldRange::new(21, 30);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersect(&b), Some(FieldRange::new(20, 20)));
        assert_eq!(a.intersect(&c), None);
        assert!(FieldRange::new(0, 100).covers(&a));
        assert!(!a.covers(&FieldRange::new(10, 21)));
    }

    #[test]
    fn as_prefix_rejects_non_blocks() {
        assert_eq!(FieldRange::new(0, 2).as_prefix(8), None); // width 3
        assert_eq!(FieldRange::new(1, 2).as_prefix(8), None); // unaligned
        assert_eq!(FieldRange::new(4, 7).as_prefix(8), Some(6));
        assert_eq!(FieldRange::new(0, 255).as_prefix(8), Some(0));
        assert_eq!(FieldRange::exact(255).as_prefix(8), Some(8));
    }

    #[test]
    fn to_prefixes_covers_exactly() {
        for (lo, hi) in [(0u64, 0u64), (1, 14), (0, 255), (3, 200), (128, 129), (5, 5)] {
            let r = FieldRange::new(lo, hi);
            let blocks = r.to_prefixes(8);
            // Blocks are disjoint, sorted, and cover exactly [lo, hi].
            let mut expect = lo;
            for &(v, p) in &blocks {
                let host = 8 - p;
                assert_eq!(v, expect, "block start mismatch for [{lo},{hi}]");
                expect = v + low_mask(host) + 1;
            }
            assert_eq!(expect, hi + 1);
        }
    }

    #[test]
    fn covering_prefix_spans_range() {
        for (lo, hi) in [(1u64, 14u64), (0, 255), (100, 101), (77, 77)] {
            let r = FieldRange::new(lo, hi);
            let (base, plen) = r.covering_prefix(8);
            let block = FieldRange::from_prefix(base, plen, 8);
            assert!(block.covers(&r), "({lo},{hi}) -> {base}/{plen}");
        }
        // An exact value is covered by the full-length prefix.
        assert_eq!(FieldRange::exact(9).covering_prefix(8), (9, 8));
    }

    #[test]
    fn domain_helpers() {
        assert_eq!(domain_max(0), 0);
        assert_eq!(domain_max(8), 255);
        assert_eq!(domain_max(64), u64::MAX);
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn new_rejects_inverted() {
        let _ = FieldRange::new(5, 4);
    }
}
