//! The classifier interface every engine in the workspace implements.

use crate::rule::{Priority, RuleId};

/// Result of a successful classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchResult {
    /// The matched rule.
    pub rule: RuleId,
    /// Its priority (cached so selectors never re-fetch the rule).
    pub priority: Priority,
}

impl MatchResult {
    /// Convenience constructor.
    #[inline]
    pub fn new(rule: RuleId, priority: Priority) -> Self {
        Self { rule, priority }
    }

    /// Keeps the better of two optional candidates (smaller priority, then
    /// smaller id; `None` always loses).
    #[inline]
    pub fn better(a: Option<MatchResult>, b: Option<MatchResult>) -> Option<MatchResult> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(x), Some(y)) => {
                let (rule, priority) = crate::rule::better((x.rule, x.priority), (y.rule, y.priority));
                Some(MatchResult { rule, priority })
            }
        }
    }
}

/// A packet classifier over a fixed rule-set.
///
/// Implementations: [`crate::LinearSearch`], `nm_tuplemerge::TupleMerge`,
/// `nm_cutsplit::CutSplit`, `nm_neurocuts::NeuroCuts`, and
/// `nuevomatch::NuevoMatch` itself (which *wraps* one of the others as its
/// remainder engine).
///
/// ## Tie semantics
///
/// When several rules match, the one with the smallest priority value wins.
/// If multiple matching rules share that priority, engines agree on the
/// *winning priority* but may report different rule ids: early-termination
/// floors compare priorities strictly, so id-level tie-breaking cannot be
/// preserved across engine boundaries. Give rules unique priorities (the
/// ClassBench position convention, and effectively what OpenFlow requires)
/// when the exact rule identity matters. [`crate::LinearSearch`] breaks ties
/// toward the smaller id and serves as the reference for single-engine
/// behaviour.
pub trait Classifier: Send + Sync {
    /// Returns the highest-priority rule matching `key`, or `None`.
    ///
    /// `key` has one `u64` per field in the rule-set's schema order.
    fn classify(&self, key: &[u64]) -> Option<MatchResult>;

    /// Early-termination variant (§4 of the paper): like [`Self::classify`],
    /// but the caller already holds a candidate with priority `floor`; the
    /// classifier may prune any work that cannot produce a strictly better
    /// (smaller) priority. Returning `None` means "nothing better than
    /// `floor`".
    ///
    /// The default implementation ignores the hint.
    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.classify(key).filter(|m| m.priority < floor)
    }

    /// Bytes used by the *index* data structures (hash tables, tree nodes,
    /// model weights) — excluding the rules themselves, matching the paper's
    /// §5.2.1 memory-footprint definition.
    fn memory_bytes(&self) -> usize;

    /// Short engine name for reports ("tm", "cs", "nc", "nm", "linear").
    fn name(&self) -> &'static str;

    /// Number of rules currently indexed.
    fn num_rules(&self) -> usize;
}

/// Classifiers supporting online rule updates (§3.9). In this workspace only
/// TupleMerge (and linear search, trivially) implement it; NuevoMatch routes
/// updates to its remainder engine.
pub trait Updatable: Classifier {
    /// Inserts a rule (id/priority/box taken from the rule itself).
    fn insert(&mut self, rule: crate::rule::Rule);

    /// Removes the rule with the given id; returns true if it was present.
    fn remove(&mut self, id: RuleId) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_prefers_lower_priority() {
        let a = Some(MatchResult::new(4, 10));
        let b = Some(MatchResult::new(7, 3));
        assert_eq!(MatchResult::better(a, b), b);
        assert_eq!(MatchResult::better(a, None), a);
        assert_eq!(MatchResult::better(None, None), None);
        // Equal priority: smaller id wins.
        let c = Some(MatchResult::new(2, 10));
        assert_eq!(MatchResult::better(a, c), c);
    }
}
