//! The classifier interface every engine in the workspace implements.

use crate::rule::{Priority, RuleId};

/// Result of a successful classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchResult {
    /// The matched rule.
    pub rule: RuleId,
    /// Its priority (cached so selectors never re-fetch the rule).
    pub priority: Priority,
}

impl MatchResult {
    /// Convenience constructor.
    #[inline]
    pub fn new(rule: RuleId, priority: Priority) -> Self {
        Self { rule, priority }
    }

    /// Keeps the better of two optional candidates (smaller priority, then
    /// smaller id; `None` always loses).
    #[inline]
    pub fn better(a: Option<MatchResult>, b: Option<MatchResult>) -> Option<MatchResult> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(x), Some(y)) => {
                let (rule, priority) =
                    crate::rule::better((x.rule, x.priority), (y.rule, y.priority));
                Some(MatchResult { rule, priority })
            }
        }
    }
}

/// A packet classifier — the **data-plane** read interface.
///
/// Implementations: [`crate::LinearSearch`], `nm_tuplemerge::TupleMerge`,
/// `nm_cutsplit::CutSplit`, `nm_neurocuts::NeuroCuts`,
/// `nuevomatch::NuevoMatch` (which *wraps* one of the others as its
/// remainder engine), and the wrappers layered above them:
/// [`crate::Snapshot`] (a generation-stamped immutable view),
/// `nuevomatch::ClassifierHandle` (lock-free reads against an atomically
/// swapped snapshot) and `nuevomatch::FlowCache`.
///
/// Every method takes `&self` and implementations are `Send + Sync`, so a
/// built classifier can be shared by any number of reader threads. Writes
/// go through the separate control-plane traits: [`crate::BatchUpdatable`]
/// for engines that accept transactional [`crate::UpdateBatch`]es, and
/// [`crate::EngineBuilder`] for (re)construction. The [`Self::generation`]
/// stamp ties the two planes together — it bumps whenever the served rule
/// content changes, which is how caches above the classifier invalidate.
///
/// ## Tie semantics
///
/// When several rules match, the one with the smallest priority value wins.
/// If multiple matching rules share that priority, engines agree on the
/// *winning priority* but may report different rule ids: early-termination
/// floors compare priorities strictly, so id-level tie-breaking cannot be
/// preserved across engine boundaries. Give rules unique priorities (the
/// ClassBench position convention, and effectively what OpenFlow requires)
/// when the exact rule identity matters. [`crate::LinearSearch`] breaks ties
/// toward the smaller id and serves as the reference for single-engine
/// behaviour.
pub trait Classifier: Send + Sync {
    /// Returns the highest-priority rule matching `key`, or `None`.
    ///
    /// `key` has one `u64` per field in the rule-set's schema order.
    fn classify(&self, key: &[u64]) -> Option<MatchResult>;

    /// Early-termination variant (§4 of the paper): like [`Self::classify`],
    /// but the caller already holds a candidate with priority `floor`; the
    /// classifier may prune any work that cannot produce a strictly better
    /// (smaller) priority. Returning `None` means "nothing better than
    /// `floor`".
    ///
    /// The default implementation ignores the hint.
    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.classify(key).filter(|m| m.priority < floor)
    }

    /// Batched lookup over a flat key buffer (§5.1 of the paper processes
    /// packets in batches of 128).
    ///
    /// `keys` packs `out.len()` keys back-to-back, each `stride` fields wide
    /// in the rule-set's schema order (the [`crate::TraceBuf`] layout —
    /// `trace.raw()` + `trace.stride()` feed this directly). On return,
    /// `out[i]` holds the verdict for key `i`.
    ///
    /// **Contract:** results are bit-identical to calling [`Self::classify`]
    /// on each key in order. This entry point validates lengths and
    /// delegates to [`Self::batch_lookup`] — override *that* hook, not this
    /// method, to batch an engine.
    ///
    /// Panics if `keys.len() != stride * out.len()` or `stride == 0`.
    fn classify_batch(&self, keys: &[u64], stride: usize, out: &mut [Option<MatchResult>]) {
        assert!(stride > 0, "classify_batch: stride must be positive");
        assert_eq!(
            keys.len(),
            stride * out.len(),
            "classify_batch: key buffer length must equal stride * out.len()"
        );
        self.batch_lookup(keys, stride, None, out);
    }

    /// Batched lookup with **per-key priority floors** — the batch form of
    /// [`Self::classify_with_floor`], used for batch-wide early termination:
    /// NuevoMatch hands its remainder engine the iSet candidates' priorities
    /// so the remainder can prune per key while sweeping the whole batch.
    ///
    /// `floors[i] == Priority::MAX` is the "no candidate" sentinel and means
    /// plain [`Self::classify`] semantics for that key (not a `< MAX`
    /// filter), exactly mirroring the per-key dispatch
    /// `match candidate { Some(b) => classify_with_floor(key, b.priority),
    /// None => classify(key) }`.
    ///
    /// Like [`Self::classify_batch`], this validates and delegates to
    /// [`Self::batch_lookup`]; engines override only the hook.
    ///
    /// Panics on the same length mismatches as [`Self::classify_batch`],
    /// plus `floors.len() != out.len()`.
    fn classify_batch_with_floors(
        &self,
        keys: &[u64],
        stride: usize,
        floors: &[Priority],
        out: &mut [Option<MatchResult>],
    ) {
        assert!(stride > 0, "classify_batch_with_floors: stride must be positive");
        assert_eq!(
            keys.len(),
            stride * out.len(),
            "classify_batch_with_floors: key buffer length must equal stride * out.len()"
        );
        assert_eq!(
            floors.len(),
            out.len(),
            "classify_batch_with_floors: one floor per output slot"
        );
        self.batch_lookup(keys, stride, Some(floors), out);
    }

    /// The single batched-lookup hook behind [`Self::classify_batch`] and
    /// [`Self::classify_batch_with_floors`]. `floors == None` means no key
    /// carries a floor (equivalent to all-`Priority::MAX`); with
    /// `Some(floors)`, each key follows the sentinel dispatch documented on
    /// `classify_batch_with_floors`.
    ///
    /// Lengths are validated by the public entry points before the hook
    /// runs, so implementations may assume `stride > 0`,
    /// `keys.len() == stride * out.len()` and, when present,
    /// `floors.len() == out.len()`. The default is the per-key reference
    /// loop; engines override this one method to amortise dispatch,
    /// vectorise across packets, and overlap memory latency (TupleMerge's
    /// table-major probe, the CutSplit/NeuroCuts level-synchronous descent,
    /// NuevoMatch's phase pipeline).
    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        for (i, key) in keys.chunks_exact(stride).enumerate() {
            let floor = floors.map_or(Priority::MAX, |f| f[i]);
            out[i] = if floor == Priority::MAX {
                self.classify(key)
            } else {
                self.classify_with_floor(key, floor)
            };
        }
    }

    /// Monotone data-plane version stamp: bumps whenever the rule content
    /// this classifier serves changes (see [`crate::Generation`]).
    ///
    /// Engines that never change after build keep the default (a constant
    /// `0`). [`crate::BatchUpdatable`] engines bump it per applied batch
    /// whose report [`crate::UpdateReport::changed`]; snapshot handles
    /// report the published snapshot's generation. Caches layered above a
    /// classifier (e.g. `nuevomatch::FlowCache`) probe this to drop stale
    /// verdicts, so a non-bumping implementation on a mutable engine is a
    /// correctness bug — and a bump for a content-preserving batch is a
    /// spurious cache stampede.
    fn generation(&self) -> crate::update::Generation {
        0
    }

    /// Bytes used by the *index* data structures (hash tables, tree nodes,
    /// model weights) — excluding the rules themselves, matching the paper's
    /// §5.2.1 memory-footprint definition.
    fn memory_bytes(&self) -> usize;

    /// Short engine name for reports ("tm", "cs", "nc", "nm", "linear").
    fn name(&self) -> &'static str;

    /// Number of rules currently indexed.
    fn num_rules(&self) -> usize;
}

// Boxed classifiers (the CLI's `Box<dyn Classifier>` engines) are
// classifiers themselves, so generic wrappers — `FlowCache`, the sharded
// runtime — can hold them without knowing the concrete engine. Every method
// forwards, including the overridable hooks, so a boxed engine keeps its
// batched pipeline and generation stamp.
impl<C: Classifier + ?Sized> Classifier for Box<C> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        (**self).classify(key)
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        (**self).classify_with_floor(key, floor)
    }

    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        (**self).batch_lookup(keys, stride, floors, out)
    }

    fn generation(&self) -> crate::update::Generation {
        (**self).generation()
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn num_rules(&self) -> usize {
        (**self).num_rules()
    }
}

// The deprecated per-op `Updatable` trait lived here for one release after
// the control-plane split; it and its TupleMerge/LinearSearch shims are gone.
// Migrate by wrapping ops in a [`crate::UpdateBatch`]:
// `engine.apply(&UpdateBatch::new().insert(rule))` /
// `engine.apply(&UpdateBatch::new().remove(id)).removed == 1`.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_classify_batch_matches_per_key() {
        use crate::range::FieldRange;
        use crate::ruleset::{FieldsSpec, RuleSet};
        let rows: Vec<Vec<FieldRange>> =
            (0..40u64).map(|i| vec![FieldRange::new(i * 25, i * 25 + 20)]).collect();
        let set = RuleSet::from_ranges(FieldsSpec::single("f", 10), rows).unwrap();
        let ls = crate::LinearSearch::build(&set);
        let keys: Vec<u64> = (0..200u64).map(|i| i * 5 % 1024).collect();
        let mut out = vec![None; keys.len()];
        ls.classify_batch(&keys, 1, &mut out);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(out[i], ls.classify(std::slice::from_ref(k)));
        }
        // Empty batch is a no-op.
        ls.classify_batch(&[], 1, &mut []);
    }

    #[test]
    #[should_panic]
    fn classify_batch_checks_lengths() {
        let ls = crate::LinearSearch::from_rules(Vec::new());
        let mut out = [None; 2];
        ls.classify_batch(&[1, 2, 3], 2, &mut out);
    }

    #[test]
    fn better_prefers_lower_priority() {
        let a = Some(MatchResult::new(4, 10));
        let b = Some(MatchResult::new(7, 3));
        assert_eq!(MatchResult::better(a, b), b);
        assert_eq!(MatchResult::better(a, None), a);
        assert_eq!(MatchResult::better(None, None), None);
        // Equal priority: smaller id wins.
        let c = Some(MatchResult::new(2, 10));
        assert_eq!(MatchResult::better(a, c), c);
    }
}
