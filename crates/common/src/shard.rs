//! Rule-set sharding: the data model behind the NUMA-aware runtime.
//!
//! The paper's §4/§5.1 parallelization replicates the classifier per core.
//! Past one socket that stops scaling: every replica's working set spans
//! the whole rule-set, and remote-node memory traffic dominates. A
//! [`ShardPlan`] instead *partitions* the rule-set along one field so each
//! shard's engine indexes only its slice, packets are **steered** to the
//! shard owning their key, and per-shard verdicts merge by priority.
//!
//! Correctness is by construction, not by test: a rule is placed in a home
//! shard only when **every** key it can match steers to that shard
//! (range rules must fit inside one shard's steering interval; hash-steered
//! rules must be exact in the steering field). Any rule that cannot make
//! that guarantee — wildcards, ranges spanning a cut — goes to the
//! **broadcast shard**, which is consulted for every packet. The best
//! verdict for a packet is therefore
//! `better(home_shard(packet), broadcast(packet))`, which equals the best
//! verdict over all rules: every matching rule is in exactly one of the two
//! sets consulted. Priority/id tie-breaking ([`MatchResult::better`]) is
//! order-independent, so the merge cannot depend on shard count.
//!
//! [`ShardStrategy::RoundRobin`] degenerates to the paper's replicated
//! mode: every home shard holds the whole set, steering balances whole
//! batches round-robin, and the broadcast shard is empty.
//!
//! [`MatchResult::better`]: crate::classifier::MatchResult::better

use crate::classifier::MatchResult;
use crate::error::Error;
use crate::rule::{Rule, RuleId};
use crate::ruleset::RuleSet;

/// How packets (and rules) map to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous cuts of the steering field's domain, placed at quantiles
    /// of the rule distribution. Rules whose range in the steering field
    /// fits inside one interval live there; the rest broadcast. The right
    /// default for range-heavy fields (ports, prefixes).
    Range,
    /// Hash of the steering field's value. Only rules *exact* in the
    /// steering field get a home shard; every range rule broadcasts. Best
    /// for exact-match-heavy fields with skewed value distributions.
    Hash,
    /// No content steering: every home shard replicates the whole set and
    /// batches are dealt round-robin (the §5.1 replicated baseline as a
    /// plan). The broadcast shard is empty.
    RoundRobin,
}

impl std::str::FromStr for ShardStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "range" => Ok(Self::Range),
            "hash" => Ok(Self::Hash),
            "rr" | "round-robin" | "replicated" => Ok(Self::RoundRobin),
            other => Err(format!("unknown shard strategy '{other}' (range|hash|rr)")),
        }
    }
}

/// Parameters for [`ShardPlan::build`].
#[derive(Clone, Copy, Debug)]
pub struct ShardPlanConfig {
    /// Number of home shards (≥ 1). `1` means "no sharding": one home shard
    /// holds everything and the broadcast shard is empty.
    pub shards: usize,
    /// Steering field, or `None` to pick the field that minimises the
    /// busiest worker's rule load (largest home shard + broadcast set),
    /// preferring fewer broadcast rules on ties — not broadcast-first,
    /// which would pick degenerate one-shard plans on wildcard-heavy
    /// fields. Ties break toward the lower dimension.
    pub dim: Option<usize>,
    /// Steering strategy.
    pub strategy: ShardStrategy,
}

impl Default for ShardPlanConfig {
    fn default() -> Self {
        Self { shards: 1, dim: None, strategy: ShardStrategy::Range }
    }
}

/// Where one rule lives under a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardRoute {
    /// Exactly one home shard serves every key this rule can match.
    Home(usize),
    /// The rule is consulted for every packet (wildcard/spanning rules).
    Broadcast,
    /// Every home shard holds the rule ([`ShardStrategy::RoundRobin`]).
    All,
}

/// A partition of a rule-set into per-shard subsets plus a broadcast
/// subset, and the steering function that maps packets to shards.
///
/// The plan is immutable once built; the control plane routes later rule
/// updates through [`ShardPlan::route_rule`] so inserts and modifies land
/// (or move) where steering will find them.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    strategy: ShardStrategy,
    dim: usize,
    shards: usize,
    /// Range strategy: shard `s` covers `[cuts[s-1], cuts[s])` with
    /// implicit 0 and +inf ends — `cuts.len() == shards - 1`, ascending.
    cuts: Vec<u64>,
    home: Vec<Vec<RuleId>>,
    broadcast: Vec<RuleId>,
}

/// SplitMix64 finaliser — the hash behind [`ShardStrategy::Hash`] steering.
#[inline]
fn mix(mut v: u64) -> u64 {
    v = (v ^ (v >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v = (v ^ (v >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    v ^ (v >> 31)
}

impl ShardPlan {
    /// Partitions `set` per `cfg`. Errors when `shards == 0` or the steering
    /// dimension is out of the schema.
    pub fn build(set: &RuleSet, cfg: &ShardPlanConfig) -> Result<Self, Error> {
        if cfg.shards == 0 {
            return Err(Error::Build { msg: "ShardPlan: shards must be >= 1".into() });
        }
        if let Some(dim) = cfg.dim {
            if dim >= set.num_fields() {
                return Err(Error::Build {
                    msg: format!(
                        "ShardPlan: steering dim {dim} outside schema ({} fields)",
                        set.num_fields()
                    ),
                });
            }
        }
        if cfg.strategy == ShardStrategy::RoundRobin || cfg.shards == 1 {
            // Whole-set shards (or a single shard): no content steering, so
            // the dimension is irrelevant; keep broadcast empty.
            let all: Vec<RuleId> = set.rules().iter().map(|r| r.id).collect();
            return Ok(Self {
                strategy: cfg.strategy,
                dim: cfg.dim.unwrap_or(0),
                shards: cfg.shards,
                cuts: Vec::new(),
                home: vec![all; cfg.shards],
                broadcast: Vec::new(),
            });
        }
        let dims: Vec<usize> = match cfg.dim {
            Some(d) => vec![d],
            None => (0..set.num_fields()).collect(),
        };
        // Auto-pick: minimise the busiest worker's rule load — its home
        // shard plus the broadcast set it merges for every packet
        // (`max_home + broadcast`), then prefer fewer broadcast rules. A
        // pure fewest-broadcast score would pick degenerate plans on
        // wildcard-heavy fields (every rule "fits" one shard ⇒ zero
        // broadcast, zero parallelism); the load term rejects those.
        let score = |p: &ShardPlan| {
            let max_home = p.home.iter().map(Vec::len).max().unwrap_or(0);
            (max_home + p.broadcast.len(), p.broadcast.len())
        };
        let mut best: Option<ShardPlan> = None;
        for dim in dims {
            let plan = Self::build_in_dim(set, cfg, dim);
            if best.as_ref().map_or(true, |b| score(&plan) < score(b)) {
                best = Some(plan);
            }
        }
        Ok(best.expect("at least one candidate dimension"))
    }

    fn build_in_dim(set: &RuleSet, cfg: &ShardPlanConfig, dim: usize) -> Self {
        let n = cfg.shards;
        let cuts = match cfg.strategy {
            ShardStrategy::Range => {
                // Quantile cuts over the rules' lower bounds: balances rule
                // count per shard when ranges are narrow relative to the
                // domain (the common ClassBench shape).
                let mut los: Vec<u64> = set.rules().iter().map(|r| r.fields[dim].lo).collect();
                los.sort_unstable();
                let mut cuts: Vec<u64> = (1..n)
                    .map(|s| {
                        let idx = (s * los.len()) / n;
                        los.get(idx).copied().unwrap_or(u64::MAX)
                    })
                    .collect();
                cuts.dedup();
                cuts
            }
            ShardStrategy::Hash => Vec::new(),
            ShardStrategy::RoundRobin => unreachable!("handled by build"),
        };
        let mut plan = Self {
            strategy: cfg.strategy,
            dim,
            // Dedup can merge range cuts when the lo distribution is
            // heavily repeated; the effective shard count follows the cuts.
            shards: if cfg.strategy == ShardStrategy::Range { cuts.len() + 1 } else { n },
            cuts,
            home: Vec::new(),
            broadcast: Vec::new(),
        };
        plan.home = vec![Vec::new(); plan.shards];
        for rule in set.rules() {
            match plan.route_rule(rule) {
                ShardRoute::Home(s) => plan.home[s].push(rule.id),
                ShardRoute::Broadcast => plan.broadcast.push(rule.id),
                ShardRoute::All => unreachable!("keyed strategies never route All"),
            }
        }
        plan
    }

    /// Steering strategy.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The steering field.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of home shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Rule ids of home shard `s`.
    pub fn home(&self, s: usize) -> &[RuleId] {
        &self.home[s]
    }

    /// Rule ids of the broadcast shard.
    pub fn broadcast(&self) -> &[RuleId] {
        &self.broadcast
    }

    /// Fraction of rules in the broadcast shard — the plan's quality metric
    /// (broadcast work is paid by every packet).
    pub fn broadcast_fraction(&self) -> f64 {
        let homed: usize = self.home.iter().map(Vec::len).sum();
        let total = match self.strategy {
            // Whole-set shards replicate; count each rule once.
            ShardStrategy::RoundRobin => self.home.first().map_or(0, Vec::len),
            _ => homed + self.broadcast.len(),
        };
        if total == 0 {
            0.0
        } else {
            self.broadcast.len() as f64 / total as f64
        }
    }

    /// Home shard for a steering-field value.
    #[inline]
    fn shard_of_value(&self, v: u64) -> usize {
        match self.strategy {
            ShardStrategy::Range => self.cuts.partition_point(|&c| c <= v),
            ShardStrategy::Hash => (mix(v) % self.shards as u64) as usize,
            ShardStrategy::RoundRobin => 0,
        }
    }

    /// Steers one packet to its home shard. `batch` is the batch index —
    /// only [`ShardStrategy::RoundRobin`] uses it (whole batches deal
    /// round-robin, like the legacy replicated mode); keyed strategies
    /// steer purely on the packet's steering-field value, so a packet's
    /// shard never depends on its position in the trace.
    #[inline]
    pub fn steer(&self, key: &[u64], batch: usize) -> usize {
        match self.strategy {
            ShardStrategy::RoundRobin => batch % self.shards,
            _ => self.shard_of_value(key[self.dim]),
        }
    }

    /// Where a rule must live for steering to find it: a home shard when
    /// every key the rule matches steers there, otherwise broadcast.
    /// Update paths route inserts/modifies through this so the placement
    /// invariant survives rule churn.
    pub fn route_rule(&self, rule: &Rule) -> ShardRoute {
        match self.strategy {
            ShardStrategy::RoundRobin => ShardRoute::All,
            ShardStrategy::Range => {
                let f = rule.fields[self.dim];
                let s = self.shard_of_value(f.lo);
                if self.shard_of_value(f.hi) == s {
                    ShardRoute::Home(s)
                } else {
                    ShardRoute::Broadcast
                }
            }
            ShardStrategy::Hash => {
                let f = rule.fields[self.dim];
                if f.lo == f.hi {
                    ShardRoute::Home(self.shard_of_value(f.lo))
                } else {
                    ShardRoute::Broadcast
                }
            }
        }
    }

    /// Materialises the per-shard rule subsets: one [`RuleSet`] per home
    /// shard plus the broadcast subset (ids and priorities preserved).
    pub fn subsets(&self, set: &RuleSet) -> (Vec<RuleSet>, RuleSet) {
        let home = self.home.iter().map(|ids| set.subset(ids)).collect();
        (home, set.subset(&self.broadcast))
    }

    /// Merges a packet's home-shard and broadcast verdicts — the steering
    /// stage's reduction, spelled out so call sites share one definition.
    #[inline]
    pub fn merge(home: Option<MatchResult>, broadcast: Option<MatchResult>) -> Option<MatchResult> {
        MatchResult::better(home, broadcast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fivetuple::FiveTuple;
    use crate::ruleset::FieldsSpec;

    fn port_set(n: u16) -> RuleSet {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    #[test]
    fn range_plan_homes_fitting_rules_and_balances() {
        let set = port_set(400);
        let cfg = ShardPlanConfig { shards: 4, dim: Some(3), strategy: ShardStrategy::Range };
        let plan = ShardPlan::build(&set, &cfg).unwrap();
        assert_eq!(plan.shards(), 4);
        let homed: usize = (0..4).map(|s| plan.home(s).len()).sum();
        // A cut can split at most one 100-wide rule per boundary.
        assert!(plan.broadcast().len() <= 3, "broadcast {}", plan.broadcast().len());
        assert_eq!(homed + plan.broadcast().len(), 400);
        for s in 0..4 {
            assert!(plan.home(s).len() >= 80, "shard {s} holds {}", plan.home(s).len());
        }
    }

    #[test]
    fn every_matching_rule_is_reachable() {
        // The construction invariant, checked exhaustively: for every rule
        // and every key in its steering range, the key steers to the rule's
        // home shard (or the rule broadcasts).
        let set = port_set(120);
        for strategy in [ShardStrategy::Range, ShardStrategy::Hash] {
            for shards in [1usize, 2, 3, 8] {
                let cfg = ShardPlanConfig { shards, dim: Some(3), strategy };
                let plan = ShardPlan::build(&set, &cfg).unwrap();
                for rule in set.rules() {
                    let route = plan.route_rule(rule);
                    for v in [
                        rule.fields[3].lo,
                        (rule.fields[3].lo + rule.fields[3].hi) / 2,
                        rule.fields[3].hi,
                    ] {
                        let key = [0u64, 0, 0, v, 0];
                        let s = plan.steer(&key, 7);
                        match route {
                            ShardRoute::Home(h) => {
                                assert_eq!(s, h, "rule {} v {v} strategy {strategy:?}", rule.id)
                            }
                            ShardRoute::Broadcast => {}
                            ShardRoute::All => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hash_plan_broadcasts_ranges_and_homes_exacts() {
        let mut rules = vec![FiveTuple::new().dst_port_range(10, 500).into_rule(0, 0)];
        for i in 1..40u16 {
            rules.push(FiveTuple::new().dst_port_exact(1000 + i).into_rule(i as u32, i as u32));
        }
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let cfg = ShardPlanConfig { shards: 4, dim: Some(3), strategy: ShardStrategy::Hash };
        let plan = ShardPlan::build(&set, &cfg).unwrap();
        assert_eq!(plan.broadcast(), &[0], "only the range rule broadcasts");
        assert!((plan.broadcast_fraction() - 1.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn round_robin_replicates_whole_set() {
        let set = port_set(50);
        let cfg = ShardPlanConfig { shards: 3, dim: None, strategy: ShardStrategy::RoundRobin };
        let plan = ShardPlan::build(&set, &cfg).unwrap();
        assert_eq!(plan.shards(), 3);
        for s in 0..3 {
            assert_eq!(plan.home(s).len(), 50);
        }
        assert!(plan.broadcast().is_empty());
        assert_eq!(plan.broadcast_fraction(), 0.0);
        // Whole batches deal round-robin, content-blind.
        assert_eq!(plan.steer(&[0, 0, 0, 9_999, 0], 0), 0);
        assert_eq!(plan.steer(&[0, 0, 0, 9_999, 0], 4), 1);
        assert_eq!(plan.route_rule(set.rule(0)), ShardRoute::All);
    }

    #[test]
    fn auto_dim_minimises_broadcast() {
        // Rules exact in dst-port but wildcard everywhere else: only dim 3
        // shards without broadcasting everything.
        let rules: Vec<_> = (0..60u16)
            .map(|i| FiveTuple::new().dst_port_exact(i * 7).into_rule(i as u32, i as u32))
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let cfg = ShardPlanConfig { shards: 2, dim: None, strategy: ShardStrategy::Range };
        let plan = ShardPlan::build(&set, &cfg).unwrap();
        assert_eq!(plan.dim(), 3, "auto-pick must choose the diverse field");
        assert!(plan.broadcast().is_empty());
    }

    #[test]
    fn single_shard_plan_is_trivial() {
        let set = port_set(10);
        let plan = ShardPlan::build(&set, &ShardPlanConfig::default()).unwrap();
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.home(0).len(), 10);
        assert!(plan.broadcast().is_empty());
        assert_eq!(plan.steer(&[0, 0, 0, 123, 0], 5), 0);
    }

    #[test]
    fn subsets_preserve_ids_and_cover_everything() {
        let set = port_set(90);
        let cfg = ShardPlanConfig { shards: 3, dim: Some(3), strategy: ShardStrategy::Range };
        let plan = ShardPlan::build(&set, &cfg).unwrap();
        let (home, broadcast) = plan.subsets(&set);
        let covered: usize = home.iter().map(RuleSet::len).sum::<usize>() + broadcast.len();
        assert_eq!(covered, 90);
        for (s, sub) in home.iter().enumerate() {
            for rule in sub.rules() {
                assert_eq!(plan.route_rule(rule), ShardRoute::Home(s));
            }
        }
    }

    #[test]
    fn rejects_zero_shards_and_bad_dim() {
        let set = port_set(5);
        assert!(
            ShardPlan::build(&set, &ShardPlanConfig { shards: 0, ..Default::default() }).is_err()
        );
        assert!(ShardPlan::build(
            &set,
            &ShardPlanConfig { shards: 2, dim: Some(9), strategy: ShardStrategy::Range }
        )
        .is_err());
    }

    #[test]
    fn strategy_parses() {
        assert_eq!("range".parse::<ShardStrategy>().unwrap(), ShardStrategy::Range);
        assert_eq!("hash".parse::<ShardStrategy>().unwrap(), ShardStrategy::Hash);
        assert_eq!("rr".parse::<ShardStrategy>().unwrap(), ShardStrategy::RoundRobin);
        assert!("bogus".parse::<ShardStrategy>().is_err());
    }
}
