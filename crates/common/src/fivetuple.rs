//! 5-tuple conventions and convenience builders.
//!
//! The classic classification 5-tuple — src-ip, dst-ip, src-port, dst-port,
//! protocol — is the schema of every ClassBench-style rule-set. This module
//! fixes the field order once and provides readable rule constructors so the
//! generators, parsers and examples never disagree on dimension indices.

use crate::range::FieldRange;
use crate::rule::{Priority, Rule, RuleId};

/// Dimension index of the source IP (32 bits).
pub const SRC_IP: usize = 0;
/// Dimension index of the destination IP (32 bits).
pub const DST_IP: usize = 1;
/// Dimension index of the source port (16 bits).
pub const SRC_PORT: usize = 2;
/// Dimension index of the destination port (16 bits).
pub const DST_PORT: usize = 3;
/// Dimension index of the protocol (8 bits).
pub const PROTO: usize = 4;
/// Number of fields in the 5-tuple schema.
pub const FIVE_TUPLE_FIELDS: usize = 5;

/// Builder for 5-tuple rules with prefix/range/exact syntax.
///
/// ```
/// use nm_common::FiveTuple;
/// // ACL-style: 10.10.0.0/16 -> anywhere, dst-port 80, TCP
/// let rule = FiveTuple::new()
///     .src_prefix([10, 10, 0, 0], 16)
///     .dst_port_exact(80)
///     .proto_exact(6)
///     .into_rule(0, 0);
/// assert!(rule.matches(&[0x0a0a_1234, 99, 7777, 80, 6]));
/// ```
#[derive(Clone, Debug)]
pub struct FiveTuple {
    fields: [FieldRange; FIVE_TUPLE_FIELDS],
}

impl Default for FiveTuple {
    fn default() -> Self {
        Self::new()
    }
}

impl FiveTuple {
    /// Starts from the all-wildcard rule.
    pub fn new() -> Self {
        Self {
            fields: [
                FieldRange::wildcard(32),
                FieldRange::wildcard(32),
                FieldRange::wildcard(16),
                FieldRange::wildcard(16),
                FieldRange::wildcard(8),
            ],
        }
    }

    /// Sets the source IP to `a.b.c.d/len`.
    pub fn src_prefix(mut self, octets: [u8; 4], len: u8) -> Self {
        self.fields[SRC_IP] = FieldRange::from_prefix(ipv4(octets), len, 32);
        self
    }

    /// Sets the destination IP to `a.b.c.d/len`.
    pub fn dst_prefix(mut self, octets: [u8; 4], len: u8) -> Self {
        self.fields[DST_IP] = FieldRange::from_prefix(ipv4(octets), len, 32);
        self
    }

    /// Sets the source IP from a raw `u32` and prefix length.
    pub fn src_prefix_raw(mut self, value: u32, len: u8) -> Self {
        self.fields[SRC_IP] = FieldRange::from_prefix(value as u64, len, 32);
        self
    }

    /// Sets the destination IP from a raw `u32` and prefix length.
    pub fn dst_prefix_raw(mut self, value: u32, len: u8) -> Self {
        self.fields[DST_IP] = FieldRange::from_prefix(value as u64, len, 32);
        self
    }

    /// Sets an arbitrary source-port range.
    pub fn src_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.fields[SRC_PORT] = FieldRange::new(lo as u64, hi as u64);
        self
    }

    /// Sets an arbitrary destination-port range.
    pub fn dst_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.fields[DST_PORT] = FieldRange::new(lo as u64, hi as u64);
        self
    }

    /// Sets an exact source port.
    pub fn src_port_exact(self, p: u16) -> Self {
        self.src_port_range(p, p)
    }

    /// Sets an exact destination port.
    pub fn dst_port_exact(self, p: u16) -> Self {
        self.dst_port_range(p, p)
    }

    /// Sets an exact protocol (6 = TCP, 17 = UDP, ...).
    pub fn proto_exact(mut self, p: u8) -> Self {
        self.fields[PROTO] = FieldRange::exact(p as u64);
        self
    }

    /// Finishes the rule with the given id and priority.
    pub fn into_rule(self, id: RuleId, priority: Priority) -> Rule {
        Rule::new(id, priority, self.fields.to_vec())
    }

    /// Returns the field ranges without wrapping in a `Rule`.
    pub fn into_fields(self) -> Vec<FieldRange> {
        self.fields.to_vec()
    }
}

/// Packs dotted-quad octets into the `u64` key value.
#[inline]
pub fn ipv4(octets: [u8; 4]) -> u64 {
    ((octets[0] as u64) << 24)
        | ((octets[1] as u64) << 16)
        | ((octets[2] as u64) << 8)
        | octets[3] as u64
}

/// Formats a `u64` key value as dotted-quad (for reports).
pub fn format_ipv4(v: u64) -> String {
    format!("{}.{}.{}.{}", (v >> 24) & 255, (v >> 16) & 255, (v >> 8) & 255, v & 255)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_box() {
        let r = FiveTuple::new()
            .src_prefix([192, 168, 0, 0], 16)
            .dst_prefix([10, 0, 0, 1], 32)
            .src_port_range(1024, 65535)
            .dst_port_exact(443)
            .proto_exact(6)
            .into_rule(5, 1);
        assert_eq!(r.id, 5);
        assert!(r.matches(&[ipv4([192, 168, 3, 4]), ipv4([10, 0, 0, 1]), 5000, 443, 6]));
        assert!(!r.matches(&[ipv4([192, 169, 3, 4]), ipv4([10, 0, 0, 1]), 5000, 443, 6]));
        assert!(!r.matches(&[ipv4([192, 168, 3, 4]), ipv4([10, 0, 0, 1]), 80, 443, 6]));
    }

    #[test]
    fn ipv4_roundtrip() {
        let v = ipv4([10, 20, 30, 40]);
        assert_eq!(format_ipv4(v), "10.20.30.40");
    }

    #[test]
    fn default_is_wildcard() {
        let r = FiveTuple::new().into_rule(0, 0);
        assert!(r.matches(&[0, 0, 0, 0, 0]));
        assert!(r.matches(&[u32::MAX as u64, u32::MAX as u64, 65535, 65535, 255]));
    }
}
