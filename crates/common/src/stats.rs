//! Rule-set structure census.
//!
//! The ClassBench paper characterises rule-sets by per-field structure:
//! prefix-length histograms, port-class mix, protocol census, wildcard
//! fractions. This module computes the same census from any [`RuleSet`] —
//! used by `nmctl inspect`, by tests that validate the generators against
//! their target profiles, and handy when deciding whether NuevoMatch will
//! accelerate a given rule-set (§3.7: look at diversity and overlap).

use crate::range::FieldRange;
use crate::ruleset::RuleSet;

/// Port-class census for a 16-bit field (the ClassBench taxonomy).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PortClassCensus {
    /// Full wildcard `0:65535`.
    pub wildcard: usize,
    /// Exactly `1024:65535`.
    pub high: usize,
    /// Exactly `0:1023`.
    pub low: usize,
    /// Single value.
    pub exact: usize,
    /// Anything else.
    pub arbitrary: usize,
}

impl PortClassCensus {
    /// Classifies one range.
    pub fn classify(r: &FieldRange) -> &'static str {
        if r.is_wildcard(16) {
            "WC"
        } else if r.lo == 1024 && r.hi == 65_535 {
            "HI"
        } else if r.lo == 0 && r.hi == 1_023 {
            "LO"
        } else if r.lo == r.hi {
            "EM"
        } else {
            "AR"
        }
    }

    /// Censuses field `dim` (must be 16-bit) of a rule-set.
    pub fn of(set: &RuleSet, dim: usize) -> PortClassCensus {
        let mut c = PortClassCensus::default();
        for rule in set.rules() {
            match Self::classify(&rule.fields[dim]) {
                "WC" => c.wildcard += 1,
                "HI" => c.high += 1,
                "LO" => c.low += 1,
                "EM" => c.exact += 1,
                _ => c.arbitrary += 1,
            }
        }
        c
    }

    /// Total rules censused.
    pub fn total(&self) -> usize {
        self.wildcard + self.high + self.low + self.exact + self.arbitrary
    }
}

/// Per-field structural summary.
#[derive(Clone, Debug)]
pub struct FieldStats {
    /// Field name from the schema.
    pub name: String,
    /// Fraction of rules with a full wildcard in this field.
    pub wildcard_fraction: f64,
    /// Fraction with an exact value.
    pub exact_fraction: f64,
    /// Distinct ranges / rules (the §3.7 diversity metric).
    pub diversity: f64,
    /// Histogram of prefix lengths for prefix-shaped ranges (index =
    /// length); non-prefix ranges are excluded.
    pub prefix_hist: Vec<usize>,
    /// Ranges that are not aligned prefix blocks.
    pub non_prefix: usize,
}

/// Computes per-field statistics for the whole set.
pub fn field_stats(set: &RuleSet) -> Vec<FieldStats> {
    let n = set.len().max(1) as f64;
    (0..set.num_fields())
        .map(|d| {
            let bits = set.spec().bits(d);
            let mut wildcard = 0usize;
            let mut exact = 0usize;
            let mut prefix_hist = vec![0usize; bits as usize + 1];
            let mut non_prefix = 0usize;
            let mut distinct = std::collections::HashSet::new();
            for rule in set.rules() {
                let r = &rule.fields[d];
                distinct.insert((r.lo, r.hi));
                if r.is_wildcard(bits) {
                    wildcard += 1;
                }
                if r.lo == r.hi {
                    exact += 1;
                }
                match r.as_prefix(bits) {
                    Some(len) => prefix_hist[len as usize] += 1,
                    None => non_prefix += 1,
                }
            }
            FieldStats {
                name: set.spec().field(d).name.clone(),
                wildcard_fraction: wildcard as f64 / n,
                exact_fraction: exact as f64 / n,
                diversity: distinct.len() as f64 / n,
                prefix_hist,
                non_prefix,
            }
        })
        .collect()
}

/// Protocol census for a 5-tuple set (field 4): `(value, count)` sorted by
/// count, with 256 standing for the wildcard.
pub fn protocol_census(set: &RuleSet, dim: usize) -> Vec<(u16, usize)> {
    let bits = set.spec().bits(dim);
    let mut counts: std::collections::HashMap<u16, usize> = std::collections::HashMap::new();
    for rule in set.rules() {
        let r = &rule.fields[dim];
        let key = if r.is_wildcard(bits) {
            256
        } else if r.lo == r.hi {
            r.lo as u16
        } else {
            257 // ranged protocol — exotic but representable
        };
        *counts.entry(key).or_default() += 1;
    }
    let mut out: Vec<(u16, usize)> = counts.into_iter().collect();
    out.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fivetuple::FiveTuple;
    use crate::ruleset::FieldsSpec;

    fn sample() -> RuleSet {
        let rules = vec![
            FiveTuple::new()
                .src_prefix([10, 0, 0, 0], 8)
                .dst_port_exact(80)
                .proto_exact(6)
                .into_rule(0, 0),
            FiveTuple::new().dst_port_range(1024, 65_535).proto_exact(6).into_rule(1, 1),
            FiveTuple::new().dst_port_range(0, 1_023).proto_exact(17).into_rule(2, 2),
            FiveTuple::new().dst_port_range(100, 200).into_rule(3, 3),
            FiveTuple::new().into_rule(4, 4),
        ];
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    #[test]
    fn port_census_classifies_all_five_classes() {
        let set = sample();
        let c = PortClassCensus::of(&set, crate::fivetuple::DST_PORT);
        assert_eq!(c.exact, 1);
        assert_eq!(c.high, 1);
        assert_eq!(c.low, 1);
        assert_eq!(c.arbitrary, 1);
        assert_eq!(c.wildcard, 1);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn field_stats_histogram() {
        let set = sample();
        let stats = field_stats(&set);
        assert_eq!(stats.len(), 5);
        let src = &stats[0];
        assert_eq!(src.name, "src-ip");
        // One /8 prefix, four wildcards (= /0 prefixes).
        assert_eq!(src.prefix_hist[8], 1);
        assert_eq!(src.prefix_hist[0], 4);
        assert!((src.wildcard_fraction - 0.8).abs() < 1e-9);
        // Port field: 100-200 and 1024-65535 are not aligned prefix blocks
        // (the latter has width 64512, not a power of two).
        let dp = &stats[crate::fivetuple::DST_PORT];
        assert_eq!(dp.non_prefix, 2);
        assert!(dp.diversity > 0.9, "all port ranges distinct");
    }

    #[test]
    fn protocol_census_counts() {
        let set = sample();
        let census = protocol_census(&set, crate::fivetuple::PROTO);
        // TCP twice, UDP once, wildcard twice.
        assert!(census.contains(&(6, 2)));
        assert!(census.contains(&(17, 1)));
        assert!(census.contains(&(256, 2)));
    }

    #[test]
    fn empty_set_is_fine() {
        let set = RuleSet::new(FieldsSpec::five_tuple(), vec![]).unwrap();
        assert_eq!(field_stats(&set).len(), 5);
        assert!(protocol_census(&set, 4).is_empty());
    }
}
