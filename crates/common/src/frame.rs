//! Length-prefixed wire frames for the classification service.
//!
//! The serve front-end (`system::serve` in `nuevomatch`) speaks one tiny
//! binary protocol over both UDP and TCP, chosen so a loopback test needs
//! no dependencies beyond `std::net`:
//!
//! ```text
//! request:  [u32 len][u64 id][len/8 - 1 x u64 key word]
//! response: [u32 len=24][u64 id][u32 rule][u32 priority][u64 generation]
//! ```
//!
//! All integers are little-endian. `len` counts the bytes *after* the
//! length word. A response with `rule == u32::MAX` means "no rule matched"
//! (`RuleId` is dense from 0, so the sentinel is unreachable). A UDP
//! datagram carries one or more complete frames back to back; a TCP stream
//! is the same byte sequence cut arbitrarily, which is why the decoders
//! work incrementally: they return `Ok(None)` on a partial frame and the
//! number of consumed bytes on success.

use crate::classifier::MatchResult;
use crate::update::Generation;

/// `rule` sentinel in a response frame meaning "no match".
pub const NO_MATCH: u32 = u32::MAX;

/// Hard cap on a request frame's body, bounding `keys` allocation from
/// untrusted lengths: 8 bytes of id + 256 key words.
pub const MAX_REQUEST_BODY: usize = 8 + 256 * 8;

/// Response body size: id + rule + priority + generation.
pub const RESPONSE_BODY: usize = 8 + 4 + 4 + 8;

/// Whole response frame size on the wire (length word included).
pub const RESPONSE_FRAME: usize = 4 + RESPONSE_BODY;

/// A decode failure that poisons the containing datagram/stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Body length is not `8 + 8*n` (request) or not [`RESPONSE_BODY`]
    /// (response).
    BadLength(u32),
    /// Body length exceeds [`MAX_REQUEST_BODY`].
    Oversize(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => write!(f, "bad frame body length {n}"),
            FrameError::Oversize(n) => write!(f, "frame body length {n} exceeds cap"),
        }
    }
}

#[inline]
fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

#[inline]
fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

/// Appends one request frame (`id`, `key` words) to `buf`.
pub fn encode_request(buf: &mut Vec<u8>, id: u64, key: &[u64]) {
    let body = 8 + key.len() * 8;
    debug_assert!(body <= MAX_REQUEST_BODY, "key too wide for the wire");
    buf.extend_from_slice(&(body as u32).to_le_bytes());
    buf.extend_from_slice(&id.to_le_bytes());
    for &w in key {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

/// A request frame header decoded off the wire; the key words land in the
/// caller's flat buffer (see [`decode_request`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestHead {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Number of key words appended to the caller's buffer.
    pub fields: usize,
}

/// Tries to decode one request frame from the front of `bytes`. On success
/// appends the key words to `keys` (flat, allocation-amortized) and returns
/// the header plus the number of bytes consumed. Returns `Ok(None)` when
/// `bytes` holds only a partial frame (TCP: read more).
pub fn decode_request(
    bytes: &[u8],
    keys: &mut Vec<u64>,
) -> Result<Option<(RequestHead, usize)>, FrameError> {
    if bytes.len() < 4 {
        return Ok(None);
    }
    let body = get_u32(bytes);
    if body as usize > MAX_REQUEST_BODY {
        return Err(FrameError::Oversize(body));
    }
    if body < 8 || (body - 8) % 8 != 0 {
        return Err(FrameError::BadLength(body));
    }
    let total = 4 + body as usize;
    if bytes.len() < total {
        return Ok(None);
    }
    let id = get_u64(&bytes[4..]);
    let fields = (body as usize - 8) / 8;
    for f in 0..fields {
        keys.push(get_u64(&bytes[12 + f * 8..]));
    }
    Ok(Some((RequestHead { id, fields }, total)))
}

/// A decoded response frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub id: u64,
    /// The verdict (`None` = no rule matched).
    pub verdict: Option<MatchResult>,
    /// Snapshot generation the verdict was computed against.
    pub generation: Generation,
}

/// Appends one response frame to `buf`.
pub fn encode_response(
    buf: &mut Vec<u8>,
    id: u64,
    verdict: Option<MatchResult>,
    generation: Generation,
) {
    buf.extend_from_slice(&(RESPONSE_BODY as u32).to_le_bytes());
    buf.extend_from_slice(&id.to_le_bytes());
    let (rule, priority) = match verdict {
        Some(m) => (m.rule, m.priority),
        None => (NO_MATCH, 0),
    };
    buf.extend_from_slice(&rule.to_le_bytes());
    buf.extend_from_slice(&priority.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
}

/// Tries to decode one response frame from the front of `bytes`; returns
/// the frame plus bytes consumed, or `Ok(None)` on a partial frame.
pub fn decode_response(bytes: &[u8]) -> Result<Option<(ResponseFrame, usize)>, FrameError> {
    if bytes.len() < 4 {
        return Ok(None);
    }
    let body = get_u32(bytes);
    if body as usize != RESPONSE_BODY {
        return Err(FrameError::BadLength(body));
    }
    if bytes.len() < RESPONSE_FRAME {
        return Ok(None);
    }
    let id = get_u64(&bytes[4..]);
    let rule = get_u32(&bytes[12..]);
    let priority = get_u32(&bytes[16..]);
    let generation = get_u64(&bytes[20..]);
    let verdict = (rule != NO_MATCH).then(|| MatchResult::new(rule, priority));
    Ok(Some((ResponseFrame { id, verdict, generation }, RESPONSE_FRAME)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut wire = Vec::new();
        encode_request(&mut wire, 7, &[1, 2, 3, 4, 5]);
        encode_request(&mut wire, 8, &[9, 9]);
        let mut keys = Vec::new();
        let (h1, used1) = decode_request(&wire, &mut keys).unwrap().unwrap();
        assert_eq!((h1.id, h1.fields), (7, 5));
        let (h2, used2) = decode_request(&wire[used1..], &mut keys).unwrap().unwrap();
        assert_eq!((h2.id, h2.fields), (8, 2));
        assert_eq!(used1 + used2, wire.len());
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 9, 9]);
    }

    #[test]
    fn request_partial_and_bad() {
        let mut wire = Vec::new();
        encode_request(&mut wire, 1, &[10, 20, 30]);
        let mut keys = Vec::new();
        // Every strict prefix is "incomplete", never an error.
        for cut in 0..wire.len() {
            assert_eq!(decode_request(&wire[..cut], &mut keys).unwrap(), None);
            assert!(keys.is_empty());
        }
        // Body length that is not 8+8n is rejected.
        let bad = 13u32.to_le_bytes();
        let mut junk = bad.to_vec();
        junk.extend_from_slice(&[0; 16]);
        assert_eq!(decode_request(&junk, &mut keys), Err(FrameError::BadLength(13)));
        // Oversize cap triggers before any allocation.
        let huge = (MAX_REQUEST_BODY as u32 + 8).to_le_bytes().to_vec();
        assert!(matches!(decode_request(&huge, &mut keys), Err(FrameError::Oversize(_))));
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        encode_response(&mut wire, 42, Some(MatchResult::new(3, 17)), 9);
        encode_response(&mut wire, 43, None, 10);
        let (r1, used) = decode_response(&wire).unwrap().unwrap();
        assert_eq!(
            r1,
            ResponseFrame { id: 42, verdict: Some(MatchResult::new(3, 17)), generation: 9 }
        );
        let (r2, used2) = decode_response(&wire[used..]).unwrap().unwrap();
        assert_eq!(r2, ResponseFrame { id: 43, verdict: None, generation: 10 });
        assert_eq!(used + used2, wire.len());
        for cut in 0..RESPONSE_FRAME {
            assert_eq!(decode_response(&wire[..cut]).unwrap(), None);
        }
    }
}
