//! Log-bucketed latency histogram (HDR-style) for tail accounting.
//!
//! The serve path (`nmctl serve`, `serve_bench`) and `update_bench` need
//! p50/p99/p999 over millions of samples without keeping the samples. An
//! exact array is too big and a fixed linear histogram cannot span the
//! nanosecond-to-second range, so this uses the classic trick: one octave
//! per power of two, each split into `2^SUB_BITS` linear sub-buckets. The
//! relative quantization error is bounded by `2^-SUB_BITS` (~3.1% here),
//! which is far below run-to-run noise for any latency we report.
//!
//! Recording is `&mut self` and allocation-free; each worker thread owns a
//! histogram and the aggregator folds them together with
//! [`LatencyHistogram::merge`].

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave (32 → ≤3.125% relative error).
const SUB: usize = 1 << SUB_BITS;
/// Values below `2*SUB` get one exact bucket each.
const EXACT: usize = 2 * SUB;
/// Octaves above the exact region: exponents `SUB_BITS+1 ..= 63`.
const OCTAVES: usize = 63 - SUB_BITS as usize;
/// Total bucket count.
const BUCKETS: usize = EXACT + OCTAVES * SUB;

/// A mergeable log-bucketed histogram of `u64` latency samples
/// (nanoseconds by convention, but any unit works).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample. Values `< EXACT` are exact; larger values
/// keep the top `SUB_BITS` bits after the leading one.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
    EXACT + (exp - SUB_BITS - 1) as usize * SUB + sub
}

/// Inclusive-exclusive value range `[lo, hi)` covered by bucket `i` — the
/// inverse of [`bucket_of`], used for percentile interpolation.
#[inline]
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < EXACT {
        return (i as u64, i as u64 + 1);
    }
    let rel = i - EXACT;
    let exp = (rel / SUB) as u32 + SUB_BITS + 1;
    let sub = (rel % SUB) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lo = (1u64 << exp) + sub * width;
    (lo, lo.saturating_add(width))
}

impl LatencyHistogram {
    /// An empty histogram (allocates the fixed bucket array once).
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a `Duration` as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact — tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated inside the
    /// winning bucket and clamped to the observed `[min, max]` so exact
    /// extremes stay exact. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (lo, hi) = bucket_bounds(i);
                let within = (target - seen - 1) as f64 / c as f64;
                let v = lo as f64 + (hi - lo) as f64 * within;
                return v.clamp(self.min as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Folds `other` into `self` (for aggregating per-thread histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Convenience summary in microseconds for JSON artifacts.
    pub fn summary_us(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: self.mean() / 1e3,
            p50_us: self.percentile(0.50) / 1e3,
            p99_us: self.percentile(0.99) / 1e3,
            p999_us: self.percentile(0.999) / 1e3,
            max_us: self.max() as f64 / 1e3,
        }
    }
}

/// Percentile digest of a nanosecond-sampled histogram, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Samples behind the digest.
    pub count: u64,
    /// Exact mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Observed maximum (exact).
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_invert_bucket_of() {
        // Every bucket's bounds must round-trip: lo maps into the bucket,
        // hi-1 maps into the bucket, hi maps into the next.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            if hi > lo && hi != u64::MAX {
                assert_eq!(bucket_of(hi - 1), i, "hi-1 of bucket {i}");
            }
        }
        // Spot-check the exact region and the first octave boundary.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(EXACT as u64 - 1), EXACT - 1);
        assert_eq!(bucket_of(EXACT as u64), EXACT);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_region_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..EXACT as u64 {
            h.record(v);
        }
        // Percentiles over 0..63 recorded once each: the q-quantile is the
        // ceil(q*64)-th smallest value, exactly.
        assert_eq!(h.percentile(0.0), 0.0);
        assert!((h.percentile(0.5) - 31.5).abs() < 1.0);
        assert_eq!(h.percentile(1.0), (EXACT - 1) as f64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), EXACT as u64 - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // For any single large value, the interpolated percentile must land
        // within one sub-bucket width (2^-SUB_BITS relative).
        let mut rng = crate::rng::SplitMix64::new(7);
        for _ in 0..1_000 {
            let v = rng.next_u64() >> (rng.below(40) as u32);
            let mut h = LatencyHistogram::new();
            h.record(v);
            let got = h.percentile(0.5);
            let err = (got - v as f64).abs() / (v as f64).max(1.0);
            assert!(err <= 1.0 / SUB as f64 + 1e-9, "v={v} got={got} err={err}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_ordered() {
        let mut rng = crate::rng::SplitMix64::new(42);
        let mut h = LatencyHistogram::new();
        for _ in 0..100_000 {
            h.record(rng.below(10_000_000) + 50);
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| h.percentile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "non-monotone: {vals:?}");
        }
        assert!(vals[0] >= h.min() as f64);
        assert!(*vals.last().unwrap() <= h.max() as f64 + 1e-9);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut rng = crate::rng::SplitMix64::new(3);
        let mut whole = LatencyHistogram::new();
        let mut parts: Vec<LatencyHistogram> = (0..4).map(|_| LatencyHistogram::new()).collect();
        for i in 0..40_000u64 {
            let v = rng.below(1 << 30);
            whole.record(v);
            parts[(i % 4) as usize].record(v);
        }
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert_eq!(merged.mean(), whole.mean());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.percentile(q), whole.percentile(q), "q={q}");
        }
    }

    #[test]
    fn merge_across_worker_threads() {
        // The intended aggregation shape: each thread records into its own
        // histogram, the parent absorbs them after join.
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut h = LatencyHistogram::new();
                    let mut rng = crate::rng::SplitMix64::new(t + 1);
                    for _ in 0..10_000 {
                        h.record(rng.below(1_000_000));
                    }
                    h
                })
            })
            .collect();
        let mut total = LatencyHistogram::new();
        for j in handles {
            total.merge(&j.join().unwrap());
        }
        assert_eq!(total.count(), 40_000);
        assert!(total.percentile(0.5) > 0.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.summary_us();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us, 0.0);
    }
}
