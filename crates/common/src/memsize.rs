//! Memory-footprint accounting helpers.
//!
//! Figure 13 of the paper compares classifier *index* sizes (the structures
//! traversed during lookup), excluding the rule storage itself. These helpers
//! make the accounting uniform across engines so the comparison is honest.

/// Bytes held by a `Vec`'s heap buffer (capacity, not length — that is what
/// the allocator actually reserved).
#[inline]
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Bytes held by a boxed slice.
#[inline]
pub fn boxed_slice_bytes<T>(s: &[T]) -> usize {
    std::mem::size_of_val(s)
}

/// Approximate bytes of a `HashMap`'s table: hashbrown allocates buckets for
/// ~8/7 of the capacity plus one control byte per bucket.
pub fn hashmap_bytes<K, V>(len: usize) -> usize {
    let slot = std::mem::size_of::<(K, V)>() + 1;
    // Round up to the next power of two of 8/7 * len, hashbrown-style.
    let buckets = ((len * 8) / 7).next_power_of_two().max(8);
    buckets * slot
}

/// Pretty-prints a byte count the way the paper annotates Figure 11
/// ("19.5 KB", "2 MB").
pub fn human_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.1} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_accounting_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(100);
        v.push(1);
        assert_eq!(vec_bytes(&v), 100 * 8);
    }

    #[test]
    fn human_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MB");
    }

    #[test]
    fn hashmap_estimate_grows() {
        assert!(hashmap_bytes::<u64, u64>(1000) > hashmap_bytes::<u64, u64>(10));
    }
}
