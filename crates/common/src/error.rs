//! Workspace error type for builders, parsers and trainers.

use crate::rule::RuleId;

/// Errors surfaced while building rule-sets or classifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A rule's field count does not match the schema.
    SchemaMismatch {
        /// Offending rule.
        rule: RuleId,
        /// Fields the schema defines.
        expected: usize,
        /// Fields the rule carries.
        got: usize,
    },
    /// A rule's range exceeds the field domain.
    OutOfDomain {
        /// Offending rule.
        rule: RuleId,
        /// Offending dimension.
        dim: usize,
        /// The out-of-range upper bound.
        hi: u64,
    },
    /// A parser could not understand an input line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Model training failed to reach the requested error bound.
    TrainingFailed {
        /// Human-readable context (which submodel, which bound).
        msg: String,
    },
    /// A classifier build was given input it cannot index.
    Build {
        /// Human-readable context.
        msg: String,
    },
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::SchemaMismatch { rule, expected, got } => {
                write!(f, "rule {rule}: schema expects {expected} fields, rule has {got}")
            }
            Error::OutOfDomain { rule, dim, hi } => {
                write!(f, "rule {rule}: field {dim} upper bound {hi} exceeds domain")
            }
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            Error::TrainingFailed { msg } => write!(f, "training failed: {msg}"),
            Error::Build { msg } => write!(f, "build failed: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Parse { line: 7, msg: "bad prefix".into() };
        assert!(e.to_string().contains("line 7"));
        let e = Error::SchemaMismatch { rule: 3, expected: 5, got: 2 };
        assert!(e.to_string().contains("rule 3"));
    }
}
