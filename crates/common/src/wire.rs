//! Zero-copy extraction of classification keys from raw packet bytes.
//!
//! A classifier consumes `&[u64]` keys; a network function holds Ethernet
//! frames. This module bridges the two without allocating: parse the
//! Ethernet/VLAN → IPv4/IPv6 → TCP/UDP/ICMP headers and emit the classic
//! 5-tuple in the [`crate::FieldsSpec::five_tuple`] field order
//! (src-ip, dst-ip, src-port, dst-port, proto).
//!
//! Parsing is defensive: every length is checked before access and malformed
//! frames return a precise [`WireError`] rather than a panic — the fault
//! cases are unit-tested byte-by-byte. IPv6 addresses do not fit a 32-bit
//! field; [`parse_five_tuple`] folds them (documented below) while
//! [`parse_six_tuple_v6`] exposes the split-into-32-bit-parts form the paper
//! recommends for long fields (§4).

use bytes::Buf;

/// Why a frame could not be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than the headers it claims to carry.
    Truncated {
        /// Which header ran out of bytes.
        layer: &'static str,
    },
    /// Ethertype we do not classify (ARP, LLDP, ...).
    UnsupportedEtherType(u16),
    /// IP version nibble was neither 4 nor 6.
    BadIpVersion(u8),
    /// IPv4 header length field below the minimum of 20 bytes.
    BadIhl(u8),
    /// A fragment with a non-zero offset carries no L4 header.
    Fragment,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { layer } => write!(f, "truncated {layer} header"),
            WireError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype 0x{t:04x}"),
            WireError::BadIpVersion(v) => write!(f, "bad IP version {v}"),
            WireError::BadIhl(l) => write!(f, "bad IPv4 IHL {l}"),
            WireError::Fragment => write!(f, "non-first fragment has no L4 header"),
        }
    }
}

impl std::error::Error for WireError {}

const ETHERTYPE_IPV4: u16 = 0x0800;
const ETHERTYPE_IPV6: u16 = 0x86DD;
const ETHERTYPE_VLAN: u16 = 0x8100;
const ETHERTYPE_QINQ: u16 = 0x88A8;

/// Ports for protocols that have none (ICMP, IGMP, ...): zero, matching the
/// wildcard-friendly convention ClassBench rule-sets use.
const NO_PORT: u64 = 0;

/// Parses an Ethernet frame into the 5-tuple key
/// `[src-ip, dst-ip, src-port, dst-port, proto]`.
///
/// * VLAN (802.1Q) and QinQ tags are skipped (up to two).
/// * IPv4 options are honoured via IHL.
/// * Non-first IPv4 fragments return [`WireError::Fragment`] — their L4
///   header lives in the first fragment.
/// * For IPv6 the 128-bit addresses are *folded* to 32 bits by XOR-ing the
///   four 32-bit words. This keeps the classic 5-field schema usable for
///   mixed traffic; use [`parse_six_tuple_v6`] when real IPv6 rules matter.
pub fn parse_five_tuple(frame: &[u8]) -> Result<[u64; 5], WireError> {
    let mut buf = frame;
    if buf.remaining() < 14 {
        return Err(WireError::Truncated { layer: "ethernet" });
    }
    buf.advance(12); // MACs are not part of the 5-tuple.
    let mut ethertype = buf.get_u16();
    // Skip up to two VLAN tags.
    for _ in 0..2 {
        if ethertype == ETHERTYPE_VLAN || ethertype == ETHERTYPE_QINQ {
            if buf.remaining() < 4 {
                return Err(WireError::Truncated { layer: "vlan" });
            }
            buf.advance(2);
            ethertype = buf.get_u16();
        }
    }
    match ethertype {
        ETHERTYPE_IPV4 => parse_ipv4(buf),
        ETHERTYPE_IPV6 => {
            let six = parse_ipv6(buf)?;
            // Fold each 128-bit address (two 64-bit halves here) into 32 bits.
            Ok([
                fold32(six.src_hi, six.src_lo),
                fold32(six.dst_hi, six.dst_lo),
                six.src_port,
                six.dst_port,
                six.proto,
            ])
        }
        other => Err(WireError::UnsupportedEtherType(other)),
    }
}

fn fold32(hi: u64, lo: u64) -> u64 {
    let x = hi ^ lo;
    ((x >> 32) ^ x) & 0xffff_ffff
}

fn parse_ipv4(mut buf: &[u8]) -> Result<[u64; 5], WireError> {
    if buf.remaining() < 20 {
        return Err(WireError::Truncated { layer: "ipv4" });
    }
    let vihl = buf[0];
    let version = vihl >> 4;
    if version != 4 {
        return Err(WireError::BadIpVersion(version));
    }
    let ihl = (vihl & 0x0f) as usize * 4;
    if ihl < 20 {
        return Err(WireError::BadIhl(vihl & 0x0f));
    }
    if buf.remaining() < ihl {
        return Err(WireError::Truncated { layer: "ipv4-options" });
    }
    let frag_field = u16::from_be_bytes([buf[6], buf[7]]);
    let frag_offset = frag_field & 0x1fff;
    let proto = buf[9];
    let src = u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]) as u64;
    let dst = u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]) as u64;
    buf.advance(ihl);
    if frag_offset != 0 {
        return Err(WireError::Fragment);
    }
    let (sp, dp) = parse_l4_ports(proto, buf)?;
    Ok([src, dst, sp, dp, proto as u64])
}

/// The six-field IPv6 view: split 128-bit addresses (§4's long-field
/// strategy), ports and protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SixTupleV6 {
    /// Top 64 bits of the source address.
    pub src_hi: u64,
    /// Bottom 64 bits of the source address.
    pub src_lo: u64,
    /// Top 64 bits of the destination address.
    pub dst_hi: u64,
    /// Bottom 64 bits of the destination address.
    pub dst_lo: u64,
    /// Source port (0 when the protocol has none).
    pub src_port: u64,
    /// Destination port.
    pub dst_port: u64,
    /// Next-header value of the transport protocol.
    pub proto: u64,
}

/// Parses an Ethernet frame carrying IPv6 into the split representation.
/// Returns [`WireError::UnsupportedEtherType`] for non-IPv6 frames.
pub fn parse_six_tuple_v6(frame: &[u8]) -> Result<SixTupleV6, WireError> {
    let mut buf = frame;
    if buf.remaining() < 14 {
        return Err(WireError::Truncated { layer: "ethernet" });
    }
    buf.advance(12);
    let mut ethertype = buf.get_u16();
    for _ in 0..2 {
        if ethertype == ETHERTYPE_VLAN || ethertype == ETHERTYPE_QINQ {
            if buf.remaining() < 4 {
                return Err(WireError::Truncated { layer: "vlan" });
            }
            buf.advance(2);
            ethertype = buf.get_u16();
        }
    }
    if ethertype != ETHERTYPE_IPV6 {
        return Err(WireError::UnsupportedEtherType(ethertype));
    }
    parse_ipv6(buf)
}

fn parse_ipv6(mut buf: &[u8]) -> Result<SixTupleV6, WireError> {
    if buf.remaining() < 40 {
        return Err(WireError::Truncated { layer: "ipv6" });
    }
    let version = buf[0] >> 4;
    if version != 6 {
        return Err(WireError::BadIpVersion(version));
    }
    let next_header = buf[6];
    let rd = |b: &[u8], o: usize| {
        u64::from_be_bytes([
            b[o],
            b[o + 1],
            b[o + 2],
            b[o + 3],
            b[o + 4],
            b[o + 5],
            b[o + 6],
            b[o + 7],
        ])
    };
    let src_hi = rd(buf, 8);
    let src_lo = rd(buf, 16);
    let dst_hi = rd(buf, 24);
    let dst_lo = rd(buf, 32);
    buf.advance(40);
    // Extension headers are rare on the classification fast path; we handle
    // the common fixed-size hop-by-hop/routing chain conservatively.
    let mut proto = next_header;
    for _ in 0..4 {
        match proto {
            0 | 43 | 60 => {
                // hop-by-hop / routing / destination options: [next, len8, ...]
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated { layer: "ipv6-ext" });
                }
                let next = buf[0];
                let len = 8 + buf[1] as usize * 8;
                if buf.remaining() < len {
                    return Err(WireError::Truncated { layer: "ipv6-ext" });
                }
                buf.advance(len);
                proto = next;
            }
            44 => return Err(WireError::Fragment),
            _ => break,
        }
    }
    let (src_port, dst_port) = parse_l4_ports(proto, buf)?;
    Ok(SixTupleV6 { src_hi, src_lo, dst_hi, dst_lo, src_port, dst_port, proto: proto as u64 })
}

fn parse_l4_ports(proto: u8, buf: &[u8]) -> Result<(u64, u64), WireError> {
    match proto {
        6 | 17 | 132 | 136 => {
            // TCP / UDP / SCTP / UDP-Lite all start with src+dst ports.
            if buf.remaining() < 4 {
                return Err(WireError::Truncated { layer: "l4" });
            }
            Ok((
                u16::from_be_bytes([buf[0], buf[1]]) as u64,
                u16::from_be_bytes([buf[2], buf[3]]) as u64,
            ))
        }
        _ => Ok((NO_PORT, NO_PORT)),
    }
}

/// Builds a minimal valid Ethernet+IPv4+TCP/UDP frame for tests and trace
/// replay tooling (the inverse of [`parse_five_tuple`], padded with zeros).
pub fn build_ipv4_frame(key: &[u64; 5]) -> Vec<u8> {
    let mut f = vec![0u8; 14 + 20 + 20];
    f[12] = 0x08; // ethertype IPv4
    f[13] = 0x00;
    let ip = &mut f[14..];
    ip[0] = 0x45; // v4, IHL 5
    ip[8] = 64; // TTL
    ip[9] = key[4] as u8;
    ip[12..16].copy_from_slice(&(key[0] as u32).to_be_bytes());
    ip[16..20].copy_from_slice(&(key[1] as u32).to_be_bytes());
    let l4 = &mut f[34..];
    l4[0..2].copy_from_slice(&(key[2] as u16).to_be_bytes());
    l4[2..4].copy_from_slice(&(key[3] as u16).to_be_bytes());
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_frame() -> Vec<u8> {
        build_ipv4_frame(&[0x0a00_0001, 0xc0a8_0102, 443, 51234, 6])
    }

    #[test]
    fn parses_tcp_five_tuple() {
        let key = parse_five_tuple(&tcp_frame()).unwrap();
        assert_eq!(key, [0x0a00_0001, 0xc0a8_0102, 443, 51234, 6]);
    }

    #[test]
    fn parses_udp_and_icmp() {
        let udp = build_ipv4_frame(&[1, 2, 53, 53, 17]);
        assert_eq!(parse_five_tuple(&udp).unwrap()[4], 17);
        let icmp = build_ipv4_frame(&[1, 2, 0, 0, 1]);
        let key = parse_five_tuple(&icmp).unwrap();
        assert_eq!(key[2], 0);
        assert_eq!(key[3], 0);
        assert_eq!(key[4], 1);
    }

    #[test]
    fn vlan_tag_is_skipped() {
        let inner = tcp_frame();
        let mut f = Vec::new();
        f.extend_from_slice(&inner[..12]);
        f.extend_from_slice(&[0x81, 0x00, 0x00, 0x64]); // VLAN 100
        f.extend_from_slice(&inner[12..]);
        assert_eq!(parse_five_tuple(&f).unwrap()[3], 51234);
    }

    #[test]
    fn qinq_double_tag() {
        let inner = tcp_frame();
        let mut f = Vec::new();
        f.extend_from_slice(&inner[..12]);
        f.extend_from_slice(&[0x88, 0xA8, 0x00, 0x01]);
        f.extend_from_slice(&[0x81, 0x00, 0x00, 0x64]);
        f.extend_from_slice(&inner[12..]);
        assert_eq!(parse_five_tuple(&f).unwrap()[0], 0x0a00_0001);
    }

    #[test]
    fn ipv4_options_respected() {
        // IHL = 6 (24-byte header): ports shift by 4 bytes.
        let mut f = vec![0u8; 14 + 24 + 4];
        f[12] = 0x08;
        f[14] = 0x46; // v4, IHL 6
        f[23] = 6; // proto TCP
        f[26..30].copy_from_slice(&1u32.to_be_bytes());
        f[30..34].copy_from_slice(&2u32.to_be_bytes());
        // L4 at 14+24 = 38.
        f[38..40].copy_from_slice(&80u16.to_be_bytes());
        f[40..42].copy_from_slice(&8080u16.to_be_bytes());
        let key = parse_five_tuple(&f).unwrap();
        assert_eq!(key, [1, 2, 80, 8080, 6]);
    }

    #[test]
    fn fragments_are_rejected() {
        let mut f = tcp_frame();
        f[14 + 6] = 0x00;
        f[14 + 7] = 0x08; // fragment offset 8
        assert_eq!(parse_five_tuple(&f), Err(WireError::Fragment));
    }

    #[test]
    fn truncation_everywhere() {
        let good = tcp_frame();
        // The minimum parseable frame is eth(14) + ipv4(20) + ports(4).
        for len in 0..good.len() {
            let r = parse_five_tuple(&good[..len]);
            if len < 38 {
                assert!(r.is_err(), "accepted a {len}-byte truncation");
            } else {
                assert!(r.is_ok(), "rejected a parseable {len}-byte frame");
            }
        }
        assert_eq!(parse_five_tuple(&good[..10]), Err(WireError::Truncated { layer: "ethernet" }));
    }

    #[test]
    fn unsupported_ethertype() {
        let mut f = tcp_frame();
        f[12] = 0x08;
        f[13] = 0x06; // ARP
        assert_eq!(parse_five_tuple(&f), Err(WireError::UnsupportedEtherType(0x0806)));
    }

    #[test]
    fn bad_version_and_ihl() {
        let mut f = tcp_frame();
        f[14] = 0x55; // version 5
        assert_eq!(parse_five_tuple(&f), Err(WireError::BadIpVersion(5)));
        let mut f = tcp_frame();
        f[14] = 0x43; // IHL 3 < 5
        assert_eq!(parse_five_tuple(&f), Err(WireError::BadIhl(3)));
    }

    fn ipv6_frame() -> Vec<u8> {
        let mut f = vec![0u8; 14 + 40 + 8];
        f[12] = 0x86;
        f[13] = 0xDD;
        let ip = &mut f[14..];
        ip[0] = 0x60;
        ip[6] = 17; // UDP
        ip[8..16].copy_from_slice(&0x2001_0db8_0000_0000u64.to_be_bytes());
        ip[16..24].copy_from_slice(&0x0000_0000_0000_0001u64.to_be_bytes());
        ip[24..32].copy_from_slice(&0xfd00_0000_0000_0000u64.to_be_bytes());
        ip[32..40].copy_from_slice(&0x0000_0000_0000_0002u64.to_be_bytes());
        let l4 = &mut f[54..];
        l4[0..2].copy_from_slice(&5353u16.to_be_bytes());
        l4[2..4].copy_from_slice(&5353u16.to_be_bytes());
        f
    }

    #[test]
    fn ipv6_six_tuple() {
        let six = parse_six_tuple_v6(&ipv6_frame()).unwrap();
        assert_eq!(six.src_hi, 0x2001_0db8_0000_0000);
        assert_eq!(six.src_lo, 1);
        assert_eq!(six.dst_hi, 0xfd00_0000_0000_0000);
        assert_eq!(six.dst_lo, 2);
        assert_eq!(six.src_port, 5353);
        assert_eq!(six.proto, 17);
    }

    #[test]
    fn ipv6_folds_into_five_tuple() {
        let key = parse_five_tuple(&ipv6_frame()).unwrap();
        assert_eq!(key[4], 17);
        assert_eq!(key[2], 5353);
        // Folded addresses stay within 32 bits.
        assert!(key[0] <= u32::MAX as u64 && key[1] <= u32::MAX as u64);
    }

    #[test]
    fn ipv6_hop_by_hop_extension() {
        let mut f = ipv6_frame();
        // Insert a hop-by-hop header: ipv6 next-header = 0; ext = [17, 0, ...pad].
        f[14 + 6] = 0;
        let mut ext = vec![0u8; 8];
        ext[0] = 17;
        f.splice(54..54, ext);
        let six = parse_six_tuple_v6(&f).unwrap();
        assert_eq!(six.proto, 17);
        assert_eq!(six.dst_port, 5353);
    }

    #[test]
    fn build_parse_roundtrip() {
        for key in [
            [0u64, 0, 0, 0, 6],
            [u32::MAX as u64, 1, 65_535, 1, 17],
            [0x0102_0304, 0x0506_0708, 1234, 4321, 132],
        ] {
            assert_eq!(parse_five_tuple(&build_ipv4_frame(&key)).unwrap(), key);
        }
    }
}
