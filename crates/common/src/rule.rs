//! Rules: axis-aligned boxes over the field domains, with a priority.

use crate::range::FieldRange;

/// Index of a rule inside its [`crate::RuleSet`].
pub type RuleId = u32;

/// Rule priority. **Smaller value = higher priority** (the paper's Figure 2
/// lists priority 1 as highest). Ties break toward the smaller [`RuleId`].
pub type Priority = u32;

/// A classification rule: one [`FieldRange`] per field plus a priority.
///
/// The number and order of fields must match the owning rule-set's
/// [`crate::FieldsSpec`]; [`crate::RuleSet::new`] validates this.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rule {
    /// Stable identifier; equals the rule's index in the originating set.
    pub id: RuleId,
    /// Smaller wins. Defaults to the rule's position (ClassBench order).
    pub priority: Priority,
    /// One inclusive range per field.
    pub fields: Vec<FieldRange>,
}

impl Rule {
    /// Creates a rule. `id` and `priority` are usually assigned by
    /// [`crate::RuleSet::from_ranges`]; use this directly for hand-built sets.
    pub fn new(id: RuleId, priority: Priority, fields: Vec<FieldRange>) -> Self {
        Self { id, priority, fields }
    }

    /// True iff the key (one value per field) lies inside the rule's box.
    #[inline]
    pub fn matches(&self, key: &[u64]) -> bool {
        debug_assert_eq!(key.len(), self.fields.len());
        self.fields.iter().zip(key).all(|(r, &v)| r.contains(v))
    }

    /// True iff the rule's range in dimension `dim` contains `v`.
    #[inline]
    pub fn matches_dim(&self, dim: usize, v: u64) -> bool {
        self.fields[dim].contains(v)
    }

    /// True iff the two rules' boxes share at least one point (overlap in
    /// every dimension).
    pub fn overlaps(&self, other: &Rule) -> bool {
        debug_assert_eq!(self.fields.len(), other.fields.len());
        self.fields.iter().zip(&other.fields).all(|(a, b)| a.overlaps(b))
    }

    /// The geometric "size" of the rule in dimension `dim` (number of values
    /// matched). Used by size-based partitioning in CutSplit.
    #[inline]
    pub fn dim_width(&self, dim: usize) -> u64 {
        self.fields[dim].width()
    }

    /// A key guaranteed to match this rule: the low corner of its box.
    pub fn witness_key(&self) -> Vec<u64> {
        self.fields.iter().map(|r| r.lo).collect()
    }
}

/// Compares two candidate matches and keeps the winner under the workspace
/// priority rule (smaller priority, then smaller id).
#[inline]
pub fn better(a: (RuleId, Priority), b: (RuleId, Priority)) -> (RuleId, Priority) {
    if (b.1, b.0) < (a.1, a.0) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: u32, f: &[(u64, u64)]) -> Rule {
        Rule::new(id, id, f.iter().map(|&(lo, hi)| FieldRange::new(lo, hi)).collect())
    }

    #[test]
    fn matches_all_dims() {
        let rule = r(0, &[(10, 20), (5, 5)]);
        assert!(rule.matches(&[15, 5]));
        assert!(!rule.matches(&[15, 6]));
        assert!(!rule.matches(&[9, 5]));
        assert!(rule.matches_dim(0, 10));
        assert!(!rule.matches_dim(1, 4));
    }

    #[test]
    fn overlap_requires_every_dim() {
        let a = r(0, &[(0, 10), (0, 10)]);
        let b = r(1, &[(10, 20), (10, 20)]);
        let c = r(2, &[(11, 20), (0, 10)]);
        assert!(a.overlaps(&b)); // share the point (10,10)
        assert!(!a.overlaps(&c)); // disjoint in dim 0
    }

    #[test]
    fn better_prefers_small_priority_then_id() {
        assert_eq!(better((5, 2), (9, 1)), (9, 1));
        assert_eq!(better((5, 2), (9, 2)), (5, 2));
        assert_eq!(better((9, 2), (5, 2)), (5, 2));
    }

    #[test]
    fn witness_matches() {
        let rule = r(3, &[(7, 9), (100, 200)]);
        assert!(rule.matches(&rule.witness_key()));
    }
}
