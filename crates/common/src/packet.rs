//! Flat packet-trace container.
//!
//! Traces are stored as one contiguous `Vec<u64>` with a fixed stride (the
//! field count), so iterating a 700K-packet trace touches memory linearly and
//! the lookup path receives plain `&[u64]` slices with zero per-packet
//! allocation.

/// A packet trace: `len()` keys, each `stride` fields wide.
#[derive(Clone, Debug, Default)]
pub struct TraceBuf {
    data: Vec<u64>,
    stride: usize,
}

impl TraceBuf {
    /// Creates an empty trace for keys of `stride` fields.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self { data: Vec::new(), stride }
    }

    /// Creates an empty trace with capacity for `n` packets.
    pub fn with_capacity(stride: usize, n: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self { data: Vec::with_capacity(stride * n), stride }
    }

    /// Appends one key. Panics if the key width differs from the stride.
    #[inline]
    pub fn push(&mut self, key: &[u64]) {
        assert_eq!(key.len(), self.stride, "key width != trace stride");
        self.data.extend_from_slice(key);
    }

    /// Number of packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.stride
    }

    /// True when the trace holds no packets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Fields per packet.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The `i`-th key.
    #[inline]
    pub fn key(&self, i: usize) -> &[u64] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Iterates over all keys in order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> {
        self.data.chunks_exact(self.stride)
    }

    /// Raw storage (e.g. for checksums in tests).
    pub fn raw(&self) -> &[u64] {
        &self.data
    }

    /// Bytes held by the trace buffer.
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut t = TraceBuf::new(3);
        t.push(&[1, 2, 3]);
        t.push(&[4, 5, 6]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.key(1), &[4, 5, 6]);
        let all: Vec<&[u64]> = t.iter().collect();
        assert_eq!(all, vec![&[1u64, 2, 3][..], &[4, 5, 6][..]]);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut t = TraceBuf::new(2);
        t.push(&[1, 2, 3]);
    }
}
