//! # nm-common — shared substrate for the NuevoMatch reproduction
//!
//! This crate holds everything the rest of the workspace agrees on:
//!
//! * [`FieldRange`] — an inclusive `u64` interval, the building block of
//!   multi-field rules (prefixes, port ranges, exact values and wildcards all
//!   lower to ranges).
//! * [`Rule`] and [`RuleSet`] — axis-aligned boxes over an explicit
//!   [`FieldsSpec`] (per-field bit widths), with the classic 5-tuple as a
//!   convenience constructor.
//! * [`Classifier`] — the trait every engine in this workspace implements
//!   (NuevoMatch, TupleMerge, CutSplit, NeuroCuts, linear search), including
//!   the *early-termination* entry point `classify_with_floor` from §4 of the
//!   paper and the memory-footprint accounting used by Figure 13.
//! * [`EngineBuilder`], [`UpdateBatch`], [`BatchUpdatable`] and
//!   [`Snapshot`] — the control-plane vocabulary of the
//!   control-plane/data-plane split: reusable engine construction,
//!   transactional updates, and the generation-stamped immutable views the
//!   data plane publishes (see [`update`]).
//! * [`LinearSearch`] — the trivially-correct reference classifier used as
//!   ground truth by every correctness test in the workspace.
//! * [`TraceBuf`] — a flat, zero-copy packet-trace container for the
//!   benchmark harness.
//!
//! ## Conventions
//!
//! * **Priorities**: smaller numeric value wins (the paper's Figure 2 lists
//!   priority 1 as highest). Ties are broken by lower [`RuleId`].
//! * **Keys**: a packet is a `&[u64]` slice with one value per field, in the
//!   order defined by the rule-set's [`FieldsSpec`]. No allocation happens on
//!   the lookup path.
//! * **Field widths**: every field declares its width in bits (≤ 64). Fields
//!   wider than 32 bits should be split into 32-bit parts, as §4 of the paper
//!   recommends for IPv6 — see [`FieldsSpec::split_wide`].

#![warn(missing_docs)]

pub mod classifier;
pub mod error;
pub mod fivetuple;
pub mod frame;
pub mod latency;
pub mod linear;
pub mod memsize;
pub mod packet;
pub mod prefetch;
pub mod range;
pub mod rng;
pub mod rule;
pub mod ruleset;
pub mod shard;
pub mod stats;
pub mod update;
pub mod wire;

pub use classifier::{Classifier, MatchResult};
pub use error::Error;
pub use fivetuple::{FiveTuple, DST_IP, DST_PORT, FIVE_TUPLE_FIELDS, PROTO, SRC_IP, SRC_PORT};
pub use latency::{LatencyHistogram, LatencySummary};
pub use linear::LinearSearch;
pub use packet::TraceBuf;
pub use range::FieldRange;
pub use rng::SplitMix64;
pub use rule::{Priority, Rule, RuleId};
pub use ruleset::{FieldSpec, FieldsSpec, RuleSet};
pub use shard::{ShardPlan, ShardPlanConfig, ShardRoute, ShardStrategy};
pub use update::{
    BatchUpdatable, EngineBuilder, Generation, Snapshot, UpdateBatch, UpdateOp, UpdateReport,
};
