//! Best-effort software prefetch for batched lookup pipelines.
//!
//! Batched classifiers issue these a phase ahead of their data-dependent
//! loads (secondary-search windows, hash-bucket rule slots) so the cache
//! misses of independent packets resolve in parallel.

/// Prefetches `slice[i]` into L1 (no-op off x86_64 or out of bounds).
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if i < slice.len() {
        // SAFETY: the pointer is in bounds (checked above); prefetch has no
        // architectural effect beyond cache state.
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(i) as *const i8,
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, i);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_and_out_of_bounds_are_safe() {
        let v = vec![1u64, 2, 3];
        prefetch_index(&v, 0);
        prefetch_index(&v, 2);
        prefetch_index(&v, 3); // out of bounds: must be a no-op
        prefetch_index::<u64>(&[], 0);
    }
}
