//! Rule-set container with an explicit per-field schema.

use crate::error::Error;
use crate::range::{domain_max, FieldRange};
use crate::rule::{Priority, Rule, RuleId};

/// Schema of a single field: its width in bits and a human-readable name.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FieldSpec {
    /// Field name used in reports ("src-ip", "dst-port", ...).
    pub name: String,
    /// Width in bits (1..=64). Fields wider than 32 bits should be split, as
    /// the paper does for IPv6 — see [`FieldsSpec::split_wide`].
    pub bits: u8,
}

impl FieldSpec {
    /// Creates a field spec. Panics if `bits` is 0 or > 64.
    pub fn new(name: impl Into<String>, bits: u8) -> Self {
        assert!((1..=64).contains(&bits), "field width must be in 1..=64");
        Self { name: name.into(), bits }
    }
}

/// Ordered collection of [`FieldSpec`]s; the schema every rule and key in a
/// [`RuleSet`] must follow.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FieldsSpec {
    fields: Vec<FieldSpec>,
}

impl FieldsSpec {
    /// Builds a schema from the given field specs.
    pub fn new(fields: Vec<FieldSpec>) -> Self {
        assert!(!fields.is_empty(), "at least one field required");
        Self { fields }
    }

    /// The classic 5-tuple: src-ip/32, dst-ip/32, src-port/16, dst-port/16,
    /// proto/8 — the schema of every ClassBench-style set in this workspace.
    pub fn five_tuple() -> Self {
        Self::new(vec![
            FieldSpec::new("src-ip", 32),
            FieldSpec::new("dst-ip", 32),
            FieldSpec::new("src-port", 16),
            FieldSpec::new("dst-port", 16),
            FieldSpec::new("proto", 8),
        ])
    }

    /// A single-field schema (e.g. the Stanford backbone dst-ip FIBs).
    pub fn single(name: &str, bits: u8) -> Self {
        Self::new(vec![FieldSpec::new(name, bits)])
    }

    /// A uniform schema of `n` fields, all `bits` wide. Used by the
    /// "performance with more fields" microbenchmark (§5.3.5).
    pub fn uniform(n: usize, bits: u8) -> Self {
        Self::new((0..n).map(|i| FieldSpec::new(format!("f{i}"), bits)).collect())
    }

    /// Number of fields.
    #[inline]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no fields (never happens for valid specs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The spec of field `dim`.
    #[inline]
    pub fn field(&self, dim: usize) -> &FieldSpec {
        &self.fields[dim]
    }

    /// Iterates over the field specs in order.
    pub fn iter(&self) -> impl Iterator<Item = &FieldSpec> {
        self.fields.iter()
    }

    /// Width in bits of field `dim`.
    #[inline]
    pub fn bits(&self, dim: usize) -> u8 {
        self.fields[dim].bits
    }

    /// Largest value of field `dim`.
    #[inline]
    pub fn max_value(&self, dim: usize) -> u64 {
        domain_max(self.fields[dim].bits)
    }

    /// Splits every field wider than 32 bits into 32-bit parts (high part
    /// first), returning the new schema and a map `old dim -> new dims`.
    ///
    /// This is the §4 "handling long fields" strategy: iSet partitioning and
    /// RQ-RMI models work on single-precision floats, so 64/128-bit fields
    /// (MAC, IPv6) are better treated as several 32-bit fields.
    pub fn split_wide(&self) -> (FieldsSpec, Vec<Vec<usize>>) {
        let mut fields = Vec::new();
        let mut map = Vec::new();
        for f in &self.fields {
            let mut dims = Vec::new();
            if f.bits <= 32 {
                dims.push(fields.len());
                fields.push(f.clone());
            } else {
                let mut remaining = f.bits;
                let mut part = 0;
                while remaining > 0 {
                    let take = remaining.min(32);
                    dims.push(fields.len());
                    fields.push(FieldSpec::new(format!("{}:{}", f.name, part), take));
                    remaining -= take;
                    part += 1;
                }
            }
            map.push(dims);
        }
        (FieldsSpec::new(fields), map)
    }
}

/// A validated set of rules sharing one [`FieldsSpec`].
///
/// The set owns its rules in priority order of *insertion*: by default rule
/// `i` has priority `i` (ClassBench convention — earlier rules win). Rule
/// ids must be unique but need not be dense — a set rebuilt after updates
/// keeps its surviving rules' original ids.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RuleSet {
    spec: FieldsSpec,
    rules: Vec<Rule>,
    /// id → position. Dense id sets map to themselves; sparse ones (post-
    /// update rebuilds) still resolve in O(1).
    index: std::collections::HashMap<RuleId, u32>,
}

impl RuleSet {
    /// Builds a set from pre-constructed rules, validating every rule against
    /// the schema (field count, domain bounds, id uniqueness).
    pub fn new(spec: FieldsSpec, rules: Vec<Rule>) -> Result<Self, Error> {
        let mut index = std::collections::HashMap::with_capacity(rules.len());
        for (pos, rule) in rules.iter().enumerate() {
            if rule.fields.len() != spec.len() {
                return Err(Error::SchemaMismatch {
                    rule: rule.id,
                    expected: spec.len(),
                    got: rule.fields.len(),
                });
            }
            for (dim, r) in rule.fields.iter().enumerate() {
                if r.hi > spec.max_value(dim) {
                    return Err(Error::OutOfDomain { rule: rule.id, dim, hi: r.hi });
                }
            }
            if index.insert(rule.id, pos as u32).is_some() {
                return Err(Error::Build { msg: format!("duplicate rule id {}", rule.id) });
            }
        }
        Ok(Self { spec, rules, index })
    }

    /// Builds a set from bare field-range rows; ids and priorities are
    /// assigned from position (row 0 = highest priority).
    pub fn from_ranges(spec: FieldsSpec, rows: Vec<Vec<FieldRange>>) -> Result<Self, Error> {
        let rules = rows
            .into_iter()
            .enumerate()
            .map(|(i, fields)| Rule::new(i as RuleId, i as Priority, fields))
            .collect();
        Self::new(spec, rules)
    }

    /// The schema.
    #[inline]
    pub fn spec(&self) -> &FieldsSpec {
        &self.spec
    }

    /// All rules, in id order.
    #[inline]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rule with the given id. Panics if the id is not in the set.
    #[inline]
    pub fn rule(&self, id: RuleId) -> &Rule {
        let pos = self.index[&id] as usize;
        &self.rules[pos]
    }

    /// The rule with the given id, or `None`.
    #[inline]
    pub fn get(&self, id: RuleId) -> Option<&Rule> {
        self.index.get(&id).map(|&pos| &self.rules[pos as usize])
    }

    /// The rule at a position (0..len), regardless of its id. Workload
    /// generators use this to draw uniform rules from sets whose ids are
    /// sparse after update rebuilds.
    #[inline]
    pub fn rule_at(&self, pos: usize) -> &Rule {
        &self.rules[pos]
    }

    /// Number of rules.
    #[inline]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set has no rules.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of fields (schema length).
    #[inline]
    pub fn num_fields(&self) -> usize {
        self.spec.len()
    }

    /// Ground-truth classification: scans every rule, returns the
    /// highest-priority match. O(n) — for tests and tiny sets only; use
    /// [`crate::LinearSearch`] for a reusable engine.
    pub fn classify_scan(&self, key: &[u64]) -> Option<(RuleId, Priority)> {
        let mut best: Option<(RuleId, Priority)> = None;
        for rule in &self.rules {
            if rule.matches(key) {
                let cand = (rule.id, rule.priority);
                best = Some(match best {
                    None => cand,
                    Some(b) => crate::rule::better(b, cand),
                });
            }
        }
        best
    }

    /// Removes exact duplicates (identical boxes), keeping the
    /// highest-priority copy. Returns the number removed. ClassBench-style
    /// generators can emit duplicates; most classifiers tolerate them but the
    /// iSet partitioner is cleaner without.
    pub fn dedup(&mut self) -> usize {
        use std::collections::HashMap;
        let mut seen: HashMap<Vec<FieldRange>, (RuleId, Priority)> = HashMap::new();
        for rule in &self.rules {
            let e = seen.entry(rule.fields.clone()).or_insert((rule.id, rule.priority));
            *e = crate::rule::better(*e, (rule.id, rule.priority));
        }
        let keep: std::collections::HashSet<RuleId> = seen.values().map(|&(id, _)| id).collect();
        let before = self.rules.len();
        self.rules.retain(|r| keep.contains(&r.id));
        self.index = self.rules.iter().enumerate().map(|(pos, r)| (r.id, pos as u32)).collect();
        before - self.rules.len()
    }

    /// Returns a new set containing only the rules whose ids appear in `ids`
    /// (ids and priorities preserved). Used to split a set into iSets and a
    /// remainder.
    pub fn subset(&self, ids: &[RuleId]) -> RuleSet {
        let rules: Vec<Rule> = ids.iter().map(|&id| self.rule(id).clone()).collect();
        let index = rules.iter().enumerate().map(|(pos, r)| (r.id, pos as u32)).collect();
        RuleSet { spec: self.spec.clone(), rules, index }
    }

    /// Byte size of the raw rule storage (not an index). Reported separately
    /// from classifier index footprints, matching §5.2.1.
    pub fn storage_bytes(&self) -> usize {
        self.rules
            .iter()
            .map(|r| {
                std::mem::size_of::<Rule>() + r.fields.len() * std::mem::size_of::<FieldRange>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tuple_schema() {
        let s = FieldsSpec::five_tuple();
        assert_eq!(s.len(), 5);
        assert_eq!(s.bits(0), 32);
        assert_eq!(s.bits(4), 8);
        assert_eq!(s.max_value(2), 65535);
    }

    #[test]
    fn schema_validation_rejects_bad_rules() {
        let spec = FieldsSpec::uniform(2, 8);
        let bad_arity = vec![Rule::new(0, 0, vec![FieldRange::exact(1)])];
        assert!(matches!(RuleSet::new(spec.clone(), bad_arity), Err(Error::SchemaMismatch { .. })));
        let bad_domain = vec![Rule::new(0, 0, vec![FieldRange::exact(1), FieldRange::exact(256)])];
        assert!(matches!(RuleSet::new(spec, bad_domain), Err(Error::OutOfDomain { .. })));
    }

    #[test]
    fn classify_scan_prefers_priority() {
        // Paper Figure 2: packet 10.10.3.100:19 matches R3 (pri 4) and R4 (pri 5) -> R3.
        let spec = FieldsSpec::new(vec![FieldSpec::new("ip", 32), FieldSpec::new("port", 16)]);
        let ip = |a: u64, b: u64, c: u64, d: u64| (a << 24) | (b << 16) | (c << 8) | d;
        let rows = vec![
            vec![FieldRange::from_prefix(ip(10, 10, 0, 0), 16, 32), FieldRange::new(10, 18)],
            vec![FieldRange::from_prefix(ip(10, 10, 1, 0), 24, 32), FieldRange::new(15, 25)],
            vec![FieldRange::from_prefix(ip(10, 0, 0, 0), 8, 32), FieldRange::new(5, 8)],
            vec![FieldRange::from_prefix(ip(10, 10, 3, 0), 24, 32), FieldRange::new(7, 20)],
            vec![FieldRange::exact(ip(10, 10, 3, 100)), FieldRange::exact(19)],
        ];
        let set = RuleSet::from_ranges(spec, rows).unwrap();
        let got = set.classify_scan(&[ip(10, 10, 3, 100), 19]).unwrap();
        assert_eq!(got.0, 3);
        // A packet matching nothing.
        assert_eq!(set.classify_scan(&[ip(11, 0, 0, 1), 9999]), None);
    }

    #[test]
    fn dedup_keeps_best() {
        let spec = FieldsSpec::uniform(1, 8);
        let rows = vec![
            vec![FieldRange::new(0, 10)],
            vec![FieldRange::new(0, 10)], // duplicate, lower priority
            vec![FieldRange::new(5, 20)],
        ];
        let mut set = RuleSet::from_ranges(spec, rows).unwrap();
        assert_eq!(set.dedup(), 1);
        assert_eq!(set.len(), 2);
        assert_eq!(set.classify_scan(&[3]).unwrap().0, 0);
    }

    #[test]
    fn split_wide_maps_dims() {
        let s = FieldsSpec::new(vec![FieldSpec::new("mac", 48), FieldSpec::new("p", 16)]);
        let (s2, map) = s.split_wide();
        assert_eq!(s2.len(), 3);
        assert_eq!(map, vec![vec![0, 1], vec![2]]);
        assert_eq!(s2.bits(0), 32);
        assert_eq!(s2.bits(1), 16);
    }

    #[test]
    fn subset_preserves_ids() {
        let spec = FieldsSpec::uniform(1, 8);
        let rows = (0..5).map(|i| vec![FieldRange::exact(i)]).collect();
        let set = RuleSet::from_ranges(spec, rows).unwrap();
        let sub = set.subset(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.rules()[0].id, 3);
        assert_eq!(sub.rules()[1].priority, 1);
    }
}
