//! Linear-scan reference classifier — the ground truth for every
//! correctness test in the workspace.

use crate::classifier::{Classifier, MatchResult, Updatable};
use crate::rule::{Priority, Rule, RuleId};
use crate::ruleset::RuleSet;

/// Brute-force classifier: rules sorted by priority, first match wins.
///
/// O(n) per lookup, O(1) extra memory. Used as the correctness oracle and as
/// the degenerate baseline in scaling plots.
pub struct LinearSearch {
    /// Rules sorted by (priority, id) so the first hit is the answer.
    rules: Vec<Rule>,
}

impl LinearSearch {
    /// Builds from a rule-set (copies the rules and sorts by priority).
    pub fn build(set: &RuleSet) -> Self {
        let mut rules = set.rules().to_vec();
        rules.sort_by_key(|r| (r.priority, r.id));
        Self { rules }
    }

    /// Builds from an explicit rule list.
    pub fn from_rules(mut rules: Vec<Rule>) -> Self {
        rules.sort_by_key(|r| (r.priority, r.id));
        Self { rules }
    }
}

impl Classifier for LinearSearch {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        self.rules.iter().find(|r| r.matches(key)).map(|r| MatchResult::new(r.id, r.priority))
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        // Rules are priority-sorted: once priorities reach the floor no rule
        // can improve on it.
        for r in &self.rules {
            if r.priority >= floor {
                return None;
            }
            if r.matches(key) {
                return Some(MatchResult::new(r.id, r.priority));
            }
        }
        None
    }

    fn memory_bytes(&self) -> usize {
        // The "index" is just the sorted order; count the Vec of rule headers.
        self.rules.capacity() * std::mem::size_of::<Rule>()
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn num_rules(&self) -> usize {
        self.rules.len()
    }
}

impl Updatable for LinearSearch {
    fn insert(&mut self, rule: Rule) {
        let pos = self.rules.partition_point(|r| (r.priority, r.id) < (rule.priority, rule.id));
        self.rules.insert(pos, rule);
    }

    fn remove(&mut self, id: RuleId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        self.rules.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::FieldRange;
    use crate::ruleset::FieldsSpec;

    fn tiny_set() -> RuleSet {
        let spec = FieldsSpec::uniform(2, 8);
        let rows = vec![
            vec![FieldRange::new(0, 100), FieldRange::new(0, 100)],
            vec![FieldRange::new(50, 60), FieldRange::new(50, 60)],
            vec![FieldRange::exact(55), FieldRange::exact(55)],
        ];
        RuleSet::from_ranges(spec, rows).unwrap()
    }

    #[test]
    fn agrees_with_scan() {
        let set = tiny_set();
        let ls = LinearSearch::build(&set);
        for key in [[55u64, 55], [50, 50], [99, 1], [200, 200]] {
            let got = ls.classify(&key).map(|m| (m.rule, m.priority));
            assert_eq!(got, set.classify_scan(&key));
        }
    }

    #[test]
    fn floor_prunes() {
        let set = tiny_set();
        let ls = LinearSearch::build(&set);
        // All three rules match (55,55); best priority is 0.
        assert_eq!(ls.classify(&[55, 55]).unwrap().priority, 0);
        // With floor 0 nothing can be better.
        assert_eq!(ls.classify_with_floor(&[55, 55], 0), None);
        // With floor 2, rule 0 (priority 0) still wins.
        assert_eq!(ls.classify_with_floor(&[55, 55], 2).unwrap().rule, 0);
    }

    #[test]
    fn updates() {
        let set = tiny_set();
        let mut ls = LinearSearch::build(&set);
        assert!(ls.remove(0));
        assert!(!ls.remove(0));
        assert_eq!(ls.classify(&[99, 1]), None);
        ls.insert(Rule::new(7, 0, vec![FieldRange::new(90, 100), FieldRange::new(0, 10)]));
        assert_eq!(ls.classify(&[99, 1]).unwrap().rule, 7);
        assert_eq!(ls.num_rules(), 3);
    }
}
