//! Linear-scan reference classifier — the ground truth for every
//! correctness test in the workspace.

use crate::classifier::{Classifier, MatchResult};
use crate::rule::{Priority, Rule, RuleId};
use crate::ruleset::RuleSet;
use crate::update::{BatchUpdatable, Generation, UpdateBatch, UpdateReport};

/// Brute-force classifier: rules sorted by priority, first match wins.
///
/// O(n) per lookup, O(1) extra memory. Used as the correctness oracle and as
/// the degenerate baseline in scaling plots.
#[derive(Clone)]
pub struct LinearSearch {
    /// Rules sorted by (priority, id) so the first hit is the answer.
    rules: Vec<Rule>,
    /// Update stamp (see [`Classifier::generation`]).
    generation: Generation,
}

impl LinearSearch {
    /// Builds from a rule-set (copies the rules and sorts by priority).
    pub fn build(set: &RuleSet) -> Self {
        Self::from_rules(set.rules().to_vec())
    }

    /// Builds from an explicit rule list.
    pub fn from_rules(mut rules: Vec<Rule>) -> Self {
        rules.sort_by_key(|r| (r.priority, r.id));
        Self { rules, generation: 0 }
    }

    fn insert_rule(&mut self, rule: Rule) {
        let pos = self.rules.partition_point(|r| (r.priority, r.id) < (rule.priority, rule.id));
        self.rules.insert(pos, rule);
    }

    fn remove_rule(&mut self, id: RuleId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        self.rules.len() != before
    }
}

impl Classifier for LinearSearch {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        self.rules.iter().find(|r| r.matches(key)).map(|r| MatchResult::new(r.id, r.priority))
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        // Rules are priority-sorted: once priorities reach the floor no rule
        // can improve on it.
        for r in &self.rules {
            if r.priority >= floor {
                return None;
            }
            if r.matches(key) {
                return Some(MatchResult::new(r.id, r.priority));
            }
        }
        None
    }

    fn memory_bytes(&self) -> usize {
        // The "index" is just the sorted order; count the Vec of rule headers.
        self.rules.capacity() * std::mem::size_of::<Rule>()
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn num_rules(&self) -> usize {
        self.rules.len()
    }

    fn generation(&self) -> Generation {
        self.generation
    }
}

impl BatchUpdatable for LinearSearch {
    fn apply(&mut self, batch: &UpdateBatch) -> UpdateReport {
        let report =
            crate::update::apply_ops(self, batch, Self::insert_rule, |s, id| s.remove_rule(id));
        // Bump only when content changed: a batch of pure misses serves the
        // same rules, and a spurious bump stampedes caches layered above.
        if report.changed() {
            self.generation += 1;
        }
        report
    }

    fn export_rules(&self) -> Vec<Rule> {
        self.rules.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::FieldRange;
    use crate::ruleset::FieldsSpec;

    fn tiny_set() -> RuleSet {
        let spec = FieldsSpec::uniform(2, 8);
        let rows = vec![
            vec![FieldRange::new(0, 100), FieldRange::new(0, 100)],
            vec![FieldRange::new(50, 60), FieldRange::new(50, 60)],
            vec![FieldRange::exact(55), FieldRange::exact(55)],
        ];
        RuleSet::from_ranges(spec, rows).unwrap()
    }

    #[test]
    fn agrees_with_scan() {
        let set = tiny_set();
        let ls = LinearSearch::build(&set);
        for key in [[55u64, 55], [50, 50], [99, 1], [200, 200]] {
            let got = ls.classify(&key).map(|m| (m.rule, m.priority));
            assert_eq!(got, set.classify_scan(&key));
        }
    }

    #[test]
    fn floor_prunes() {
        let set = tiny_set();
        let ls = LinearSearch::build(&set);
        // All three rules match (55,55); best priority is 0.
        assert_eq!(ls.classify(&[55, 55]).unwrap().priority, 0);
        // With floor 0 nothing can be better.
        assert_eq!(ls.classify_with_floor(&[55, 55], 0), None);
        // With floor 2, rule 0 (priority 0) still wins.
        assert_eq!(ls.classify_with_floor(&[55, 55], 2).unwrap().rule, 0);
    }

    #[test]
    fn updates() {
        let set = tiny_set();
        let mut ls = LinearSearch::build(&set);
        assert_eq!(ls.generation(), 0);
        let report = ls.apply(&UpdateBatch::new().remove(0).remove(0));
        assert_eq!((report.removed, report.missing), (1, 1), "double delete reports absence");
        assert_eq!(ls.classify(&[99, 1]), None);
        assert_eq!(ls.generation(), 1);
        let add = Rule::new(7, 0, vec![FieldRange::new(90, 100), FieldRange::new(0, 10)]);
        assert_eq!(ls.apply(&UpdateBatch::new().insert(add)).inserted, 1);
        assert_eq!(ls.classify(&[99, 1]).unwrap().rule, 7);
        assert_eq!(ls.num_rules(), 3);
        assert_eq!(ls.generation(), 2);
        // The empty batch is a no-op and does not bump the generation.
        assert_eq!(ls.apply(&UpdateBatch::new()), UpdateReport::default());
        assert_eq!(ls.generation(), 2);
        // Neither does a non-empty batch of pure misses (regression: this
        // used to bump per non-empty batch and stampede flow caches).
        let r = ls.apply(&UpdateBatch::new().remove(555).remove(556));
        assert_eq!((r.missing, r.changed()), (2, false));
        assert_eq!(ls.generation(), 2, "no-op batch must not bump the generation");
        assert_eq!(ls.export_rules().len(), 3);
    }

    #[test]
    fn insert_is_an_upsert_on_id() {
        let set = tiny_set();
        let mut ls = LinearSearch::build(&set);
        let replacement = Rule::new(0, 0, vec![FieldRange::exact(7), FieldRange::exact(7)]);
        let r = ls.apply(&UpdateBatch::new().insert(replacement));
        assert_eq!((r.inserted, r.replaced, r.removed), (1, 1, 0));
        assert_eq!(ls.num_rules(), 3, "re-inserted id must not duplicate");
        assert_eq!(ls.classify(&[7, 7]).unwrap().rule, 0);
        assert_eq!(ls.classify(&[99, 1]), None, "old version of rule 0 must be gone");
    }
}
