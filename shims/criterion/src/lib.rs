//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! groups, per-group sample/time knobs, [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a plain
//! median-of-samples timer instead of criterion's full statistics engine.
//! Each benchmark prints one `name … time: [median ns]` line, so the BENCH
//! json scraper keys on the same shape of output.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    result_ns: f64,
}

impl Bencher {
    /// Times `f` in a loop: a warm-up period, then `samples` timed samples
    /// within the measurement budget; records the median ns/iteration.
    pub fn iter<O, R>(&mut self, mut f: O)
    where
        O: FnMut() -> R,
    {
        // Warm-up, and calibrate iterations per sample while at it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        self.result_ns = samples_ns[samples_ns.len() / 2];
    }
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measured time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    fn run_one<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.sample_size,
            result_ns: f64::NAN,
        };
        f(&mut b);
        println!("{}/{} … time: [{:.1} ns]", self.name, id.0, b.result_ns);
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into(), f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id, |b| f(b, input));
    }

    /// Ends the group (printing is per-benchmark; nothing buffered).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group with default timing settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(300),
            _criterion: self,
        }
    }
}

/// Re-export matching criterion's: benches use `std::hint::black_box` via
/// this path in some styles.
pub use std::hint::black_box;

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.warm_up_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn runner_completes() {
        benches();
    }
}
