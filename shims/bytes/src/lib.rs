//! Offline stand-in for the `bytes` crate.
//!
//! The workspace's build environment has no registry access, so this shim
//! provides exactly the [`Buf`]/[`BufMut`] surface `nm-common::wire` and
//! `nuevomatch::persist` consume: cursor-style reads over `&[u8]` and
//! appending writes into `Vec<u8>`. Semantics match the real crate for this
//! subset (panics on out-of-bounds reads, little/big-endian getters as
//! named).

#![warn(missing_docs)]

/// Read access to a buffer of bytes with an advancing cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The bytes at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past the end of the buffer");
        *self = &self[cnt..];
    }
}

/// Write access to an append-only byte buffer.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_slice(b"hd");
        out.put_u8(7);
        out.put_u32_le(0xdead_beef);
        out.put_u64_le(42);
        out.put_f32_le(1.5);
        let mut buf: &[u8] = &out;
        let mut hd = [0u8; 2];
        buf.copy_to_slice(&mut hd);
        assert_eq!(&hd, b"hd");
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xdead_beef);
        assert_eq!(buf.get_u64_le(), 42);
        assert_eq!(buf.get_f32_le(), 1.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn big_endian_u16() {
        let mut buf: &[u8] = &[0x12, 0x34, 0xff];
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.remaining(), 1);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1];
        let _ = buf.get_u32_le();
    }
}
