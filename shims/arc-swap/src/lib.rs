//! Offline stand-in for `arc-swap`.
//!
//! Provides the piece the workspace's control-plane/data-plane split uses:
//! [`ArcSwap`], a shared slot holding an `Arc<T>` that readers can `load`
//! without ever blocking while a writer atomically replaces the value.
//!
//! The real crate implements this with hazard-pointer-style debt tracking;
//! this shim uses the *left-right* two-slot scheme, which needs only
//! atomics and is simple enough to audit:
//!
//! * Two slots each hold an `Arc<T>` plus a reader registration counter;
//!   an atomic `current` index names the live slot.
//! * **Readers** register on the current slot (counter increment), re-check
//!   that the slot is still current (a concurrent writer may have swapped
//!   between the two steps — then they deregister and retry), clone the
//!   `Arc`, and deregister. No locks, no syscalls; a retry can only be
//!   forced once per concurrent `store`, so the load is wait-free in the
//!   absence of writers and lock-free under them.
//! * **Writers** (serialised by a mutex — swap traffic is control-plane
//!   rate, not packet rate) wait for stragglers to drain off the *standby*
//!   slot, write the new `Arc` into it, and flip `current`. The previous
//!   value stays parked in the standby slot until the *next* store
//!   overwrites it, so at most one superseded snapshot is kept alive —
//!   that is the price of never making readers wait.
//!
//! Memory ordering: `SeqCst` throughout. The swap path runs at most a few
//! thousand times per second; buying ordering headroom with weaker
//! orderings here would be all risk and no measurable reward.
//!
//! # Model checking
//!
//! Built with `--cfg nm_model`, every synchronization primitive here is
//! swapped for its `nm_model` twin and the `UnsafeCell` slot payloads
//! become race-checked cells, so the whole left-right protocol runs under
//! the bounded model checker (`cargo test` then exercises the `model_*`
//! tests). Adding `--cfg nm_model_mutate` weakens the writer's `current`
//! flip to `Relaxed` — a seeded bug that the model tests must detect; see
//! [`flip_ordering`].

#![warn(missing_docs)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

#[cfg(not(nm_model))]
use std::{hint::spin_loop, sync::atomic::AtomicUsize, sync::Mutex};

#[cfg(nm_model)]
use nm_model::{hint::spin_loop, sync::atomic::AtomicUsize, sync::Mutex};

/// Ordering of the writer's `current` flip (the store that publishes a new
/// snapshot to readers).
///
/// Under `--cfg nm_model_mutate` this weakens to `Relaxed`, deliberately
/// dropping the release edge that makes the freshly written slot payload
/// visible to readers. The model test
/// `model_mutation_weakened_flip_is_caught` asserts the checker flags the
/// resulting race — the "teeth test" proving the model would catch a real
/// ordering regression on this line.
fn flip_ordering() -> Ordering {
    if cfg!(nm_model_mutate) {
        Ordering::Relaxed
    } else {
        Ordering::SeqCst
    }
}

const SEQ: Ordering = Ordering::SeqCst;

#[cfg(not(nm_model))]
mod payload {
    use std::cell::UnsafeCell;
    use std::sync::Arc;

    /// A slot's payload: interior-mutable, guarded by the left-right
    /// protocol rather than a lock.
    pub(crate) struct Payload<T>(UnsafeCell<Option<Arc<T>>>);

    impl<T> Payload<T> {
        pub(crate) fn new(v: Option<Arc<T>>) -> Self {
            Self(UnsafeCell::new(v))
        }

        /// Clones the held `Arc` out of the cell.
        ///
        /// # Safety
        ///
        /// The caller must hold left-right read permission on the slot:
        /// either it is a reader that registered on the slot and re-verified
        /// the slot is still current *after* registering (the writer drains
        /// registered readers before mutating a standby slot, so no mutation
        /// can be concurrent), or it is the serialised writer itself.
        pub(crate) unsafe fn clone_inner(&self) -> Option<Arc<T>> {
            // SAFETY: the function contract rules out a concurrent
            // `replace`, so the shared read cannot tear.
            unsafe { (*self.0.get()).clone() }
        }

        /// Replaces the cell contents, returning the previous value.
        ///
        /// # Safety
        ///
        /// The caller must be the serialised writer, and the slot must be
        /// standby with zero registered readers (drained), so no reader can
        /// observe the mutation.
        pub(crate) unsafe fn replace(&self, v: Option<Arc<T>>) -> Option<Arc<T>> {
            // SAFETY: the function contract gives the writer exclusive
            // access to the cell for the duration of the call.
            unsafe { std::mem::replace(&mut *self.0.get(), v) }
        }
    }
}

#[cfg(nm_model)]
mod payload {
    use nm_model::cell::RaceCell;
    use std::sync::Arc;

    /// Model twin of the slot payload: a race-checked cell, so the model
    /// checker itself verifies the left-right invariants the real build's
    /// `unsafe` blocks assume.
    pub(crate) struct Payload<T>(RaceCell<Option<Arc<T>>>);

    impl<T> Payload<T> {
        pub(crate) fn new(v: Option<Arc<T>>) -> Self {
            Self(RaceCell::new(v))
        }

        /// Clones the held `Arc` out of the cell.
        ///
        /// # Safety
        ///
        /// None needed — the model cell flags any racy access itself; the
        /// signature stays `unsafe` so call sites are identical in both
        /// builds.
        pub(crate) unsafe fn clone_inner(&self) -> Option<Arc<T>> {
            self.0.get()
        }

        /// Replaces the cell contents, returning the previous value.
        ///
        /// # Safety
        ///
        /// None needed — see [`Payload::clone_inner`].
        pub(crate) unsafe fn replace(&self, v: Option<Arc<T>>) -> Option<Arc<T>> {
            self.0.replace(v)
        }
    }
}

use payload::Payload;

struct Slot<T> {
    /// Written only by the single active writer, and only while the slot is
    /// standby with zero registered readers; read by readers only while
    /// registered on a slot they re-verified as current.
    value: Payload<T>,
    readers: AtomicUsize,
}

/// An atomic storage cell for an `Arc<T>` with never-blocking readers.
///
/// Mirrors the `arc_swap::ArcSwap` API surface the workspace needs:
/// [`ArcSwap::new`], [`ArcSwap::load_full`], [`ArcSwap::store`] and
/// [`ArcSwap::swap`].
pub struct ArcSwap<T> {
    slots: [Slot<T>; 2],
    current: AtomicUsize,
    /// Serialises writers; never touched by readers.
    write_lock: Mutex<()>,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads and `T` is
// never dropped or mutated in place, so the usual `Arc` bounds
// (`T: Send + Sync`) are exactly what is required; the interior mutability
// is guarded by the left-right protocol documented on `Slot::value`.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
// SAFETY: as above — shared references only ever clone `Arc`s out under
// the reader registration protocol.
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates the cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slots: [
                Slot { value: Payload::new(Some(value)), readers: AtomicUsize::new(0) },
                Slot { value: Payload::new(None), readers: AtomicUsize::new(0) },
            ],
            current: AtomicUsize::new(0),
            write_lock: Mutex::new(()),
        }
    }

    /// Wraps `value` in an `Arc` and creates the cell (convenience matching
    /// `arc_swap::ArcSwap::from_pointee`).
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Returns a clone of the current `Arc` without ever blocking.
    ///
    /// At most one retry per concurrent [`ArcSwap::store`] can occur; with
    /// no writer in flight the fast path is two atomic ops and an `Arc`
    /// clone.
    pub fn load_full(&self) -> Arc<T> {
        loop {
            let idx = self.current.load(SEQ);
            let slot = &self.slots[idx];
            slot.readers.fetch_add(1, SEQ);
            if self.current.load(SEQ) == idx {
                // SAFETY: the slot was current *after* we registered, so the
                // writer path (which drains readers before touching a
                // standby slot's value) cannot be mutating it concurrently.
                let arc = unsafe { slot.value.clone_inner() }.expect("current slot holds a value");
                slot.readers.fetch_sub(1, SEQ);
                return arc;
            }
            // A store flipped `current` between our two reads; back off the
            // stale slot and retry against the new one.
            slot.readers.fetch_sub(1, SEQ);
            spin_loop();
        }
    }

    /// Alias for [`ArcSwap::load_full`] (the real crate's `load` returns a
    /// guard; every call site here wants an owned `Arc` anyway).
    pub fn load(&self) -> Arc<T> {
        self.load_full()
    }

    /// Atomically publishes `value`; readers see either the old or the new
    /// `Arc`, never anything in between.
    pub fn store(&self, value: Arc<T>) {
        drop(self.swap(value));
    }

    /// [`ArcSwap::store`] that also returns the replaced `Arc`.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        #[cfg(not(nm_model))]
        let _guard = self.write_lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        #[cfg(nm_model)]
        let _guard = self.write_lock.lock();
        let cur = self.current.load(SEQ);
        let next = 1 - cur;
        // Wait out stragglers still registered on the standby slot. Only
        // readers that loaded `current` *two* flips ago can be here, and
        // they deregister as soon as their re-check fails, so this drains in
        // bounded time — and it is the writer waiting, never a reader.
        while self.slots[next].readers.load(SEQ) != 0 {
            spin_loop();
        }
        // SAFETY: we are the serialised writer (holding `write_lock`) and
        // the standby slot just drained to zero registered readers, so the
        // replace is exclusive.
        let old_standby = unsafe { self.slots[next].value.replace(Some(value)) };
        self.current.store(next, flip_ordering());
        // `old_standby` is the snapshot superseded by the *previous* store;
        // the one we just retired stays parked in `slots[cur]` until the
        // next call reclaims it. Returning the freshest retired value would
        // require draining `slots[cur]` here, which would make writers wait
        // on *current* readers; handing back the older generation keeps the
        // writer wait bounded and is all the call sites need (they drop it).
        old_standby.unwrap_or_else(|| {
            // SAFETY: first-ever store — the standby slot was empty, so the
            // retired snapshot is the one still parked in the old current
            // slot, which only we (the serialised writer) may mutate; a
            // shared clone racing reader loads is fine.
            unsafe { self.slots[cur].value.clone_inner() }.expect("initial slot holds a value")
        })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap").field("value", &self.load_full()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::atomic::Ordering::SeqCst;

    #[test]
    fn load_returns_stored_value() {
        let cell = ArcSwap::from_pointee(7usize);
        assert_eq!(*cell.load_full(), 7);
        cell.store(Arc::new(8));
        assert_eq!(*cell.load_full(), 8);
        cell.store(Arc::new(9));
        assert_eq!(*cell.load(), 9);
    }

    #[test]
    fn swap_returns_a_retired_arc() {
        let cell = ArcSwap::from_pointee(1usize);
        let old = cell.swap(Arc::new(2));
        assert_eq!(*old, 1);
        // Second swap returns the generation parked by the first.
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 1);
        let old = cell.swap(Arc::new(4));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load_full(), 4);
    }

    #[test]
    fn concurrent_loads_and_stores_stay_coherent() {
        // Readers hammer load_full while a writer publishes monotonically
        // increasing values; every observed value must be one the writer
        // published, and per-reader observations must be monotone.
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut last = 0u64;
                let mut seen = 0usize;
                // Load-then-check so every reader samples at least once even
                // if it is scheduled after the writer finishes.
                loop {
                    let v = *cell.load_full();
                    assert!(v >= last, "went backwards: {last} -> {v}");
                    last = v;
                    seen += 1;
                    if stop.load(SeqCst) {
                        break;
                    }
                }
                seen
            }));
        }
        for i in 1..=10_000u64 {
            cell.store(Arc::new(i));
        }
        stop.store(true, SeqCst);
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        assert_eq!(*cell.load_full(), 10_000);
    }

    #[test]
    fn old_snapshots_survive_while_held() {
        let cell = ArcSwap::from_pointee(vec![1, 2, 3]);
        let pinned = cell.load_full();
        cell.store(Arc::new(vec![4]));
        cell.store(Arc::new(vec![5]));
        cell.store(Arc::new(vec![6]));
        // The pinned reader still sees its generation untouched.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(*cell.load_full(), vec![6]);
    }
}

/// Exhaustive bounded model checking of the left-right protocol. Built (and
/// run) only under `--cfg nm_model`; see the crate docs.
#[cfg(all(test, nm_model))]
mod model_tests {
    use super::*;
    use nm_model::thread;

    /// Two readers each sampling twice while a writer publishes 1 then 2:
    /// every observation must be a published value, observations must be
    /// per-reader monotone, and no slot access may race.
    fn readers_and_writer() {
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            readers.push(thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..2 {
                    let v = *cell.load_full();
                    assert!(v >= last, "reader went backwards: {last} -> {v}");
                    assert!(v <= 2, "observed {v}, which was never published");
                    last = v;
                }
            }));
        }
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.store(Arc::new(1));
                cell.store(Arc::new(2));
            })
        };
        for r in readers {
            r.join();
        }
        writer.join();
        assert_eq!(*cell.load_full(), 2);
    }

    #[cfg(not(nm_model_mutate))]
    #[test]
    fn model_concurrent_loads_and_stores_are_race_free() {
        let out = nm_model::check("arc-swap left-right", readers_and_writer);
        assert!(out.schedules > 1, "exploration degenerated to one schedule");
    }

    #[cfg(not(nm_model_mutate))]
    #[test]
    fn model_pinned_snapshot_survives_stores() {
        nm_model::check("arc-swap pinned snapshot", || {
            let cell = Arc::new(ArcSwap::from_pointee(10u64));
            let pinned = cell.load_full();
            let writer = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    cell.store(Arc::new(11));
                    cell.store(Arc::new(12));
                })
            };
            // The pinned snapshot must stay intact while both slots are
            // recycled under it.
            assert_eq!(*pinned, 10);
            writer.join();
            assert_eq!(*pinned, 10);
            assert_eq!(*cell.load_full(), 12);
        });
    }

    /// The teeth test: with the seeded mutation (`--cfg nm_model_mutate`)
    /// weakening the writer's `current` flip to `Relaxed`, the checker must
    /// find a violation — proof the model would catch a real ordering
    /// regression at that site.
    #[cfg(nm_model_mutate)]
    #[test]
    fn model_mutation_weakened_flip_is_caught() {
        let v = nm_model::find_violation(readers_and_writer)
            .expect("the Relaxed current-flip must surface as a model violation");
        assert!(
            v.message.contains("data race") || v.message.contains("backwards"),
            "unexpected violation kind: {}",
            v.message
        );
    }
}
