//! Offline stand-in for `arc-swap`.
//!
//! Provides the piece the workspace's control-plane/data-plane split uses:
//! [`ArcSwap`], a shared slot holding an `Arc<T>` that readers can `load`
//! without ever blocking while a writer atomically replaces the value.
//!
//! The real crate implements this with hazard-pointer-style debt tracking;
//! this shim uses the *left-right* two-slot scheme, which needs only
//! atomics and is simple enough to audit:
//!
//! * Two slots each hold an `Arc<T>` plus a reader registration counter;
//!   an atomic `current` index names the live slot.
//! * **Readers** register on the current slot (counter increment), re-check
//!   that the slot is still current (a concurrent writer may have swapped
//!   between the two steps — then they deregister and retry), clone the
//!   `Arc`, and deregister. No locks, no syscalls; a retry can only be
//!   forced once per concurrent `store`, so the load is wait-free in the
//!   absence of writers and lock-free under them.
//! * **Writers** (serialised by a mutex — swap traffic is control-plane
//!   rate, not packet rate) wait for stragglers to drain off the *standby*
//!   slot, write the new `Arc` into it, and flip `current`. The previous
//!   value stays parked in the standby slot until the *next* store
//!   overwrites it, so at most one superseded snapshot is kept alive —
//!   that is the price of never making readers wait.
//!
//! Memory ordering: `SeqCst` throughout. The swap path runs at most a few
//! thousand times per second; buying ordering headroom with weaker
//! orderings here would be all risk and no measurable reward.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

struct Slot<T> {
    /// Written only by the single active writer, and only while the slot is
    /// standby with zero registered readers; read by readers only while
    /// registered on a slot they re-verified as current.
    value: UnsafeCell<Option<Arc<T>>>,
    readers: AtomicUsize,
}

/// An atomic storage cell for an `Arc<T>` with never-blocking readers.
///
/// Mirrors the `arc_swap::ArcSwap` API surface the workspace needs:
/// [`ArcSwap::new`], [`ArcSwap::load_full`], [`ArcSwap::store`] and
/// [`ArcSwap::swap`].
pub struct ArcSwap<T> {
    slots: [Slot<T>; 2],
    current: AtomicUsize,
    /// Serialises writers; never touched by readers.
    write_lock: Mutex<()>,
}

// Readers clone `Arc<T>` handles out of the cell from any thread, so the
// usual `Arc` bounds apply.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates the cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slots: [
                Slot { value: UnsafeCell::new(Some(value)), readers: AtomicUsize::new(0) },
                Slot { value: UnsafeCell::new(None), readers: AtomicUsize::new(0) },
            ],
            current: AtomicUsize::new(0),
            write_lock: Mutex::new(()),
        }
    }

    /// Wraps `value` in an `Arc` and creates the cell (convenience matching
    /// `arc_swap::ArcSwap::from_pointee`).
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Returns a clone of the current `Arc` without ever blocking.
    ///
    /// At most one retry per concurrent [`ArcSwap::store`] can occur; with
    /// no writer in flight the fast path is two atomic ops and an `Arc`
    /// clone.
    pub fn load_full(&self) -> Arc<T> {
        loop {
            let idx = self.current.load(SeqCst);
            let slot = &self.slots[idx];
            slot.readers.fetch_add(1, SeqCst);
            if self.current.load(SeqCst) == idx {
                // The slot was current *after* we registered, so the writer
                // path (which drains readers before touching a standby
                // slot's value) cannot be mutating it concurrently.
                let arc = unsafe { (*slot.value.get()).as_ref().expect("current slot") }.clone();
                slot.readers.fetch_sub(1, SeqCst);
                return arc;
            }
            // A store flipped `current` between our two reads; back off the
            // stale slot and retry against the new one.
            slot.readers.fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Alias for [`ArcSwap::load_full`] (the real crate's `load` returns a
    /// guard; every call site here wants an owned `Arc` anyway).
    pub fn load(&self) -> Arc<T> {
        self.load_full()
    }

    /// Atomically publishes `value`; readers see either the old or the new
    /// `Arc`, never anything in between.
    pub fn store(&self, value: Arc<T>) {
        drop(self.swap(value));
    }

    /// [`ArcSwap::store`] that also returns the replaced `Arc`.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let _guard = self.write_lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let cur = self.current.load(SeqCst);
        let next = 1 - cur;
        // Wait out stragglers still registered on the standby slot. Only
        // readers that loaded `current` *two* flips ago can be here, and
        // they deregister as soon as their re-check fails, so this drains in
        // bounded time — and it is the writer waiting, never a reader.
        while self.slots[next].readers.load(SeqCst) != 0 {
            std::hint::spin_loop();
        }
        let old_standby = unsafe { (*self.slots[next].value.get()).replace(value) };
        self.current.store(next, SeqCst);
        // `old_standby` is the snapshot superseded by the *previous* store;
        // the one we just retired stays parked in `slots[cur]` until the
        // next call reclaims it. Returning the freshest retired value would
        // require draining `slots[cur]` here, which would make writers wait
        // on *current* readers; handing back the older generation keeps the
        // writer wait bounded and is all the call sites need (they drop it).
        old_standby.unwrap_or_else(|| {
            // First-ever store: the standby slot was empty, so the retired
            // snapshot is the one still parked in the old current slot.
            unsafe { (*self.slots[cur].value.get()).as_ref().expect("initial slot") }.clone()
        })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap").field("value", &self.load_full()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_stored_value() {
        let cell = ArcSwap::from_pointee(7usize);
        assert_eq!(*cell.load_full(), 7);
        cell.store(Arc::new(8));
        assert_eq!(*cell.load_full(), 8);
        cell.store(Arc::new(9));
        assert_eq!(*cell.load(), 9);
    }

    #[test]
    fn swap_returns_a_retired_arc() {
        let cell = ArcSwap::from_pointee(1usize);
        let old = cell.swap(Arc::new(2));
        assert_eq!(*old, 1);
        // Second swap returns the generation parked by the first.
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 1);
        let old = cell.swap(Arc::new(4));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load_full(), 4);
    }

    #[test]
    fn concurrent_loads_and_stores_stay_coherent() {
        // Readers hammer load_full while a writer publishes monotonically
        // increasing values; every observed value must be one the writer
        // published, and per-reader observations must be monotone.
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut last = 0u64;
                let mut seen = 0usize;
                // Load-then-check so every reader samples at least once even
                // if it is scheduled after the writer finishes.
                loop {
                    let v = *cell.load_full();
                    assert!(v >= last, "went backwards: {last} -> {v}");
                    last = v;
                    seen += 1;
                    if stop.load(SeqCst) {
                        break;
                    }
                }
                seen
            }));
        }
        for i in 1..=10_000u64 {
            cell.store(Arc::new(i));
        }
        stop.store(true, SeqCst);
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        assert_eq!(*cell.load_full(), 10_000);
    }

    #[test]
    fn old_snapshots_survive_while_held() {
        let cell = ArcSwap::from_pointee(vec![1, 2, 3]);
        let pinned = cell.load_full();
        cell.store(Arc::new(vec![4]));
        cell.store(Arc::new(vec![5]));
        cell.store(Arc::new(vec![6]));
        // The pinned reader still sees its generation untouched.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(*cell.load_full(), vec![6]);
    }
}
