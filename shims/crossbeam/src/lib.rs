//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces the workspace's parallel harness uses:
//!
//! * [`channel::bounded`] — a blocking, bounded MPMC channel. Unlike
//!   `std::sync::mpsc`, both endpoints are `Sync`, so worker closures can
//!   capture receivers by reference inside a thread scope (the crossbeam
//!   property the runtime's worker pipeline relies on).
//! * [`thread::scope`] — scoped spawning layered over `std::thread::scope`,
//!   with crossbeam's closure signature (the spawned closure receives a
//!   scope handle argument, which this shim passes as a placeholder).
//!
//! Built on `Mutex` + `Condvar`; throughput is adequate for the per-batch
//! (not per-packet) messaging the harness does.

#![warn(missing_docs)]

/// Bounded blocking channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`] when there is no message
    /// ready.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// The sending half of a bounded channel. Cloneable; the channel closes
    /// for receivers when the last clone drops.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a bounded channel. Cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates a channel holding at most `cap` in-flight messages.
    /// `send` blocks while full; `recv` blocks while empty.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(cap.max(1))),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::Relaxed);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().expect("channel lock");
            loop {
                if self.0.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                if queue.len() < self.0.cap {
                    queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                queue = self.0.not_full.wait(queue).expect("channel lock");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails when the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.not_empty.wait(queue).expect("channel lock");
            }
        }

        /// Takes a message if one is ready; never blocks.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().expect("channel lock");
            if let Some(v) = queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over messages; ends when the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }
}

/// Scoped thread spawning.
pub mod thread {
    /// Handle to a scope within which borrowing threads can be spawned.
    ///
    /// Crossbeam passes `&Scope` to spawned closures as well; since every
    /// caller in this workspace ignores that argument (`|_| …`), the shim
    /// passes a unit placeholder instead, which keeps the lifetimes simple.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env` borrows. The closure receives a
        /// placeholder in the position where crossbeam passes the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.0.spawn(move || f(())))
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller.
    ///
    /// Returns `Ok` with the closure's result; a panicking worker propagates
    /// as a panic from this call (std semantics) rather than an `Err`, which
    /// is equivalent for callers that `.expect()` the result.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_across_scope() {
        let (tx, rx) = channel::bounded::<usize>(2);
        let total = thread::scope(|scope| {
            let h = scope.spawn(|_| rx.iter().sum::<usize>());
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 4950);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }

    #[test]
    fn recv_fails_after_sender_drop() {
        let (tx, rx) = channel::bounded::<u8>(4);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        // Capacity 1: the second send must wait for the recv below.
        let (tx, rx) = channel::bounded::<usize>(1);
        thread::scope(|scope| {
            scope.spawn(|_| {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        })
        .unwrap();
    }
}
