//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free `lock()`
//! signature (no `Result`; a poisoned lock is recovered, matching
//! parking_lot's no-poisoning behaviour). Only what the workspace uses.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's infallible `lock` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike std, a
    /// panic in a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }
}
