//! Offline stand-in for `proptest`.
//!
//! Supports the API surface `tests/prop_invariants.rs` uses: the
//! [`proptest!`] macro with an inline `proptest_config` attribute, range and
//! tuple strategies, [`collection::vec`], `prop_map`, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a fixed
//! deterministic RNG (no failure persistence or shrinking — a failing case
//! panics with the generated values via the assertion message, and rerunning
//! reproduces it exactly).

#![warn(missing_docs)]

/// Deterministic RNG driving case generation (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    /// A fixed-seed RNG; every test run sees the same case sequence.
    pub fn deterministic() -> Self {
        TestRng(0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u64, u32, u16, u8, usize);

/// Types with a full-range strategy via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T` — mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy yielding vectors of `element` draws with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (the `proptest::array` subset in use).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy yielding `[S::Value; 8]` from 8 independent element draws.
    pub fn uniform8<S: Strategy>(element: S) -> Uniform8<S> {
        Uniform8 { element }
    }

    /// Strategy returned by [`uniform8`].
    pub struct Uniform8<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 8] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before a case set is
    /// considered exhausted (accepted for API parity; this shim does not
    /// regenerate rejected cases, it simply skips them).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 65_536 }
    }
}

/// The common imports: strategy machinery plus the assertion macros.
pub mod prelude {
    pub use crate::{any, collection, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)` runs
/// `cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr); ) => {};
    // The attribute repetition swallows `#[test]` together with any doc
    // comments; re-emitting it puts `#[test]` back on the generated fn.
    (@cfg ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for _case in 0..cfg.cases {
                // One closure per case: `prop_assume!` rejects by returning.
                // (`mut` in case the body mutates captured state.)
                #[allow(unused_mut)]
                let mut case = |rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                };
                case(&mut rng);
            }
        }
        $crate::__proptest_tests! { @cfg ($cfg); $($rest)* }
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts within a property (plain panic; the generated inputs appear in
/// the formatted message the caller provides).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        /// Ranges respect their bounds.
        #[test]
        fn range_in_bounds(x in 10u64..20) {
            prop_assert!((10..20).contains(&x));
        }

        /// Tuples and maps compose.
        #[test]
        fn tuple_and_vec((a, b) in (0u64..5, 0u64..5), v in collection::vec(0u64..3, 2..6)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_filters(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (0u64..10).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }
}
