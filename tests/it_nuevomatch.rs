//! NuevoMatch-specific integration behaviour: configuration sweeps, memory
//! accounting, error-bound plumbing, fallback cases.

use nm_classbench::{generate, AppKind};
use nm_common::{Classifier, FieldsSpec, FiveTuple, LinearSearch, RuleSet};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams, TrainerKind};

fn fast(max_isets: usize, min_cov: f64) -> NuevoMatchConfig {
    NuevoMatchConfig {
        max_isets,
        min_iset_coverage: min_cov,
        rqrmi: RqRmiParams { samples_init: 512, ..Default::default() },
        early_termination: true,
        partial_retrain: Default::default(),
    }
}

#[test]
fn more_isets_never_reduce_coverage() {
    let set = generate(AppKind::Fw, 2_000, 1);
    let mut prev = 0.0;
    for k in 1..=4 {
        let nm = NuevoMatch::build(&set, &fast(k, 0.0), TupleMerge::build).unwrap();
        assert!(nm.coverage() >= prev);
        prev = nm.coverage();
    }
}

#[test]
fn min_coverage_gate_produces_fallback() {
    // With an absurd 99% single-iSet requirement, everything lands in the
    // remainder and NuevoMatch degrades gracefully to the baseline.
    let set = generate(AppKind::Fw, 1_000, 2);
    let nm = NuevoMatch::build(&set, &fast(4, 0.99), TupleMerge::build).unwrap();
    assert_eq!(nm.isets().len(), 0);
    assert_eq!(nm.remainder().num_rules(), 1_000);
    let oracle = LinearSearch::build(&set);
    for key in uniform_trace(&set, 500, 3).iter() {
        assert_eq!(nm.classify(key), oracle.classify(key));
    }
}

#[test]
fn memory_counts_models_and_remainder() {
    let set = generate(AppKind::Acl, 3_000, 3);
    let nm = NuevoMatch::build(&set, &fast(4, 0.05), TupleMerge::build).unwrap();
    let iset_bytes: usize = nm.isets().iter().map(|i| i.memory_bytes()).sum();
    assert_eq!(nm.memory_bytes(), iset_bytes + nm.remainder().memory_bytes());
    // Paper headline: the RQ-RMI index is KBs even for thousands of rules.
    assert!(iset_bytes < 128 * 1024, "iSet models too big: {iset_bytes}");
}

#[test]
fn error_bounds_respected_on_real_workload() {
    let set = generate(AppKind::Acl, 5_000, 4);
    let nm = NuevoMatch::build(&set, &fast(4, 0.05), TupleMerge::build).unwrap();
    for iset in nm.isets() {
        let model = iset.model();
        assert!(model.max_error_bound() <= 5_000, "bound should be < n");
        // Every leaf bound must hold for the iSet's own range endpoints —
        // verify through the public predict API on the original rules.
    }
    // End-to-end the guarantee shows as agreement, tested in it_agreement.
}

#[test]
fn adam_trainer_end_to_end() {
    let set = generate(AppKind::Acl, 600, 5);
    let cfg = NuevoMatchConfig {
        rqrmi: RqRmiParams {
            samples_init: 256,
            trainer: TrainerKind::HingeThenAdam(nm_nn::AdamConfig {
                epochs: 40,
                ..Default::default()
            }),
            max_attempts: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let nm = NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap();
    let oracle = LinearSearch::build(&set);
    for key in uniform_trace(&set, 800, 6).iter() {
        assert_eq!(nm.classify(key), oracle.classify(key));
    }
}

#[test]
fn single_rule_set() {
    let rules = vec![FiveTuple::new().dst_port_exact(80).into_rule(0, 0)];
    let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
    let nm = NuevoMatch::build(&set, &fast(4, 0.0), TupleMerge::build).unwrap();
    assert_eq!(nm.classify(&[0, 0, 0, 80, 0]).unwrap().rule, 0);
    assert_eq!(nm.classify(&[0, 0, 0, 81, 0]), None);
}

#[test]
fn empty_rule_set() {
    let set = RuleSet::new(FieldsSpec::five_tuple(), vec![]).unwrap();
    let nm = NuevoMatch::build(&set, &fast(4, 0.0), TupleMerge::build).unwrap();
    assert_eq!(nm.classify(&[1, 2, 3, 4, 5]), None);
    assert_eq!(nm.num_rules(), 0);
    assert_eq!(nm.coverage(), 0.0);
}

#[test]
fn wide_fields_are_split_not_crashed() {
    // A 48-bit MAC-style field must be split per §4 before training;
    // FieldsSpec::split_wide provides the mapping.
    let spec = FieldsSpec::new(vec![
        nm_common::FieldSpec::new("mac", 48),
        nm_common::FieldSpec::new("port", 16),
    ]);
    let (split, map) = spec.split_wide();
    assert_eq!(split.len(), 3);
    assert_eq!(map[0], vec![0, 1]);
    // Rules over the split schema train fine.
    let rows: Vec<Vec<nm_common::FieldRange>> = (0..200u64)
        .map(|i| {
            vec![
                nm_common::FieldRange::exact(i * 7 % 65_536),
                nm_common::FieldRange::exact(i * 13 % 65_536),
                nm_common::FieldRange::new(i * 300, i * 300 + 250),
            ]
        })
        .collect();
    let set = RuleSet::from_ranges(split, rows).unwrap();
    let nm = NuevoMatch::build(&set, &fast(2, 0.0), LinearSearch::build).unwrap();
    let oracle = LinearSearch::build(&set);
    for key in uniform_trace(&set, 500, 7).iter() {
        assert_eq!(nm.classify(key), oracle.classify(key));
    }
}
