//! Parallel-execution integration: the two-worker split and the replicated
//! baseline mode must produce exactly the sequential results on real
//! generated workloads, at several batch sizes.
//!
//! The runtime takes [`ClassifierHandle`]s: the handle is also a
//! [`Classifier`](nm_common::Classifier), so the sequential/replicated
//! reference paths run against the very same object.

use nm_classbench::{generate, AppKind};
use nm_trace::{uniform_trace, zipf_trace};
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::{run_replicated, run_sequential, run_two_workers};
use nuevomatch::{ClassifierHandle, NuevoMatchConfig, RqRmiParams};

fn build(n: usize, seed: u64) -> (ClassifierHandle<TupleMerge>, nm_common::RuleSet) {
    let set = generate(AppKind::Acl, n, seed);
    let cfg = NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 512, ..Default::default() },
        ..Default::default()
    };
    (ClassifierHandle::new(&set, &cfg, TupleMerge::build).unwrap(), set)
}

#[test]
fn two_workers_equal_sequential_across_batch_sizes() {
    let (nm, set) = build(1_500, 31);
    let trace = uniform_trace(&set, 6_000, 32);
    let seq = run_sequential(&nm, &trace);
    for batch in [1usize, 7, 128, 1_024, 10_000] {
        let par = run_two_workers(&nm, &trace, batch);
        assert_eq!(par.checksum, seq.checksum, "batch {batch}");
    }
}

#[test]
fn two_workers_on_skewed_traffic() {
    let (nm, set) = build(1_000, 33);
    let trace = zipf_trace(&set, 6_000, 1.25, 34);
    let seq = run_sequential(&nm, &trace);
    let par = run_two_workers(&nm, &trace, 128);
    assert_eq!(par.checksum, seq.checksum);
}

#[test]
fn replicated_single_thread_equals_sequential() {
    let (nm, set) = build(800, 35);
    let trace = uniform_trace(&set, 4_000, 36);
    let seq = run_sequential(&nm, &trace);
    let rep = run_replicated(&nm, &trace, 1, 128);
    assert_eq!(rep.checksum, seq.checksum);
}

#[test]
fn replicated_multi_thread_processes_everything() {
    // With >1 thread the checksum combination is order-independent per
    // thread but batch-partition-dependent, so validate via a
    // partition-independent aggregate: the number of matched packets.
    let (nm, set) = build(800, 37);
    let trace = uniform_trace(&set, 4_000, 38);
    use nm_common::Classifier;
    let matched_seq = trace.iter().filter(|k| nm.classify(k).is_some()).count();
    // All drawn from rules: everything matches.
    assert_eq!(matched_seq, trace.len());
    for threads in [2usize, 4] {
        let rep = run_replicated(&nm, &trace, threads, 64);
        assert!(rep.pps > 0.0, "threads {threads}");
        assert!(rep.seconds > 0.0);
    }
}

#[test]
fn trace_shorter_than_batch() {
    let (nm, set) = build(300, 39);
    let trace = uniform_trace(&set, 50, 40);
    let seq = run_sequential(&nm, &trace);
    let par = run_two_workers(&nm, &trace, 128);
    assert_eq!(par.checksum, seq.checksum);
}
