//! Worker-runtime integration: every execution plan — the two-worker
//! iSet/remainder split, the replicated baseline, and the sharded data
//! planes — must produce exactly the sequential results on real generated
//! workloads, at several batch sizes and worker grids, on all four engine
//! families (nm/tm/cs/nc).
//!
//! The update-facing tests drive the [`ShardedHandle`] control plane: a
//! fanned `UpdateBatch` stream must keep the shards verdict-equivalent to a
//! whole-set [`ClassifierHandle`] receiving the same stream (property-
//! checked below), and a pinned [`ShardEpoch`] must never mix generations
//! across shards — one batch of one transaction is visible everywhere or
//! nowhere.

use proptest::prelude::*;

use nm_classbench::{generate, AppKind};
use nm_common::{
    Classifier, FieldsSpec, FiveTuple, RuleSet, ShardPlanConfig, ShardStrategy, UpdateBatch,
};
use nm_cutsplit::CutSplit;
use nm_neurocuts::{NeuroCuts, NeuroCutsConfig};
use nm_trace::{uniform_trace, zipf_trace};
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_sequential;
use nuevomatch::{
    ClassifierHandle, NuevoMatchConfig, RqRmiParams, Runtime, RuntimeConfig, ShardedClassifier,
    ShardedHandle,
};

fn fast_cfg() -> NuevoMatchConfig {
    NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 512, ..Default::default() },
        ..Default::default()
    }
}

fn build(n: usize, seed: u64) -> (ClassifierHandle<TupleMerge>, nm_common::RuleSet) {
    let set = generate(AppKind::Acl, n, seed);
    (ClassifierHandle::new(&set, &fast_cfg(), TupleMerge::build).unwrap(), set)
}

fn runtime(batch: usize) -> Runtime {
    Runtime::new(RuntimeConfig { batch, ..Default::default() })
}

fn plan(shards: usize) -> ShardPlanConfig {
    ShardPlanConfig { shards, dim: None, strategy: ShardStrategy::Range }
}

#[test]
fn two_workers_equal_sequential_across_batch_sizes() {
    let (nm, set) = build(1_500, 31);
    let trace = uniform_trace(&set, 6_000, 32);
    let seq = run_sequential(&nm, &trace);
    for batch in [1usize, 7, 128, 1_024, 10_000] {
        let par = runtime(batch).run_split(&nm, &trace).unwrap();
        assert_eq!(par.checksum, seq.checksum, "batch {batch}");
    }
}

#[test]
fn two_workers_on_skewed_traffic() {
    let (nm, set) = build(1_000, 33);
    let trace = zipf_trace(&set, 6_000, 1.25, 34);
    let seq = run_sequential(&nm, &trace);
    let par = runtime(128).run_split(&nm, &trace).unwrap();
    assert_eq!(par.checksum, seq.checksum);
}

#[test]
fn replicated_equals_sequential_at_every_width() {
    // The plan-based replicated mode merges in trace order, so the checksum
    // is comparable at any thread count (the legacy XOR fold was not).
    let (nm, set) = build(800, 35);
    let trace = uniform_trace(&set, 4_000, 36);
    let seq = run_sequential(&nm, &trace);
    for threads in [1usize, 2, 4] {
        let rep = runtime(64).run_replicated(&nm, threads, &trace).unwrap();
        assert_eq!(rep.checksum, seq.checksum, "threads {threads}");
        assert!(rep.pps > 0.0);
        assert!(rep.seconds > 0.0);
    }
}

#[test]
fn trace_shorter_than_batch() {
    let (nm, set) = build(300, 39);
    let trace = uniform_trace(&set, 50, 40);
    let seq = run_sequential(&nm, &trace);
    let par = runtime(128).run_split(&nm, &trace).unwrap();
    assert_eq!(par.checksum, seq.checksum);
}

/// The acceptance matrix: the sharded runtime is checksum-equivalent to
/// `run_sequential` over the whole-set engine on all four engine families,
/// across shard counts and worker widths.
#[test]
fn sharded_runtime_equals_sequential_on_all_four_engines() {
    let set = generate(AppKind::Acl, 1_200, 41);
    let trace = uniform_trace(&set, 5_000, 42);
    let grids = [(2usize, 1usize), (3, 2)];

    // nm (handle replicas — the live control plane's data path).
    {
        let whole = ClassifierHandle::new(&set, &fast_cfg(), TupleMerge::build).unwrap();
        let seq = run_sequential(&whole, &trace);
        for &(shards, wps) in &grids {
            let sharded =
                ShardedHandle::new(&set, &fast_cfg(), &plan(shards), TupleMerge::build).unwrap();
            let rt = Runtime::new(RuntimeConfig { workers_per_shard: wps, ..Default::default() });
            let stats = rt.run(&sharded, &trace).unwrap();
            assert_eq!(stats.checksum, seq.checksum, "nm {shards}x{wps}");
            // The steering stage saw every packet exactly once.
            assert_eq!(stats.steered.iter().sum::<u64>(), trace.len() as u64);
        }
    }
    // tm / cs / nc (static per-shard replicas).
    let check_static =
        |name: &str, engine: &dyn Classifier, sharded: &ShardedClassifier<Box<dyn Classifier>>| {
            let seq = run_sequential(engine, &trace);
            let rt = Runtime::new(RuntimeConfig { workers_per_shard: 2, ..Default::default() });
            let stats = rt.run(sharded, &trace).unwrap();
            assert_eq!(stats.checksum, seq.checksum, "{name}");
            // And the sharded engine's own (single-threaded) batch path agrees.
            let direct = run_sequential(sharded, &trace);
            assert_eq!(direct.checksum, seq.checksum, "{name} per-key steer");
        };
    let tm = TupleMerge::build(&set);
    let tm_sharded = ShardedClassifier::build(&set, &plan(2), |s: &RuleSet| {
        Box::new(TupleMerge::build(s)) as Box<dyn Classifier>
    })
    .unwrap();
    check_static("tm", &tm, &tm_sharded);
    let cs = CutSplit::build(&set);
    let cs_sharded = ShardedClassifier::build(&set, &plan(2), |s: &RuleSet| {
        Box::new(CutSplit::build(s)) as Box<dyn Classifier>
    })
    .unwrap();
    check_static("cs", &cs, &cs_sharded);
    let nc_cfg = NeuroCutsConfig { iterations: 8, sample: 1_024, ..Default::default() };
    let nc = NeuroCuts::with_config(&set, nc_cfg);
    let nc_sharded = ShardedClassifier::build(&set, &plan(2), move |s: &RuleSet| {
        Box::new(NeuroCuts::with_config(s, nc_cfg)) as Box<dyn Classifier>
    })
    .unwrap();
    check_static("nc", &nc, &nc_sharded);
}

/// A pinned epoch can never mix generations across shards: one transaction
/// that touches two shards is visible everywhere or nowhere, no matter how
/// the reader's pin races the writer's fan-out.
#[test]
fn epoch_pins_never_mix_generations_across_shards() {
    // Two rules steered to different shards (low vs high dst-port range).
    let rules: Vec<_> = (0..120u16)
        .map(|i| {
            FiveTuple::new().dst_port_range(i * 500, i * 500 + 450).into_rule(i as u32, i as u32)
        })
        .collect();
    let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
    let cfg = ShardPlanConfig { shards: 2, dim: Some(3), strategy: ShardStrategy::Range };
    let sharded =
        ShardedHandle::new(&set, &fast_cfg(), &cfg, nm_common::LinearSearch::build).unwrap();
    // Rule 2 lives in shard 0's range, rule 100 in shard 1's.
    assert_ne!(
        sharded.plan().steer(&[0, 0, 0, 1_100, 0], 0),
        sharded.plan().steer(&[0, 0, 0, 50_100, 0], 0),
        "test needs the probes on different shards"
    );
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = sharded.clone();
        let stop_ref = &stop;
        scope.spawn(move || {
            // Each batch moves BOTH rules between state A (priority tag via
            // distinct target ports) and state B, atomically.
            let mut flip = false;
            while !stop_ref.load(std::sync::atomic::Ordering::SeqCst) {
                let (p2, p100) = if flip { (1_100u16, 50_100u16) } else { (40_000, 2_000) };
                writer.apply(
                    &UpdateBatch::new()
                        .modify(FiveTuple::new().dst_port_exact(p2).into_rule(2, 2))
                        .modify(FiveTuple::new().dst_port_exact(p100).into_rule(100, 100)),
                );
                flip = !flip;
            }
        });
        for _ in 0..2_000 {
            let epoch = sharded.epoch();
            // Capture the pinned per-shard stamps *before* the writer gets
            // a chance to race, probe, then re-read: a pinned epoch is
            // frozen, so the stamps must still be the captured ones.
            let pinned_gens = epoch.home_generations();
            // Coherence across shards: one *epoch-pinned* read covers both
            // shards — the Classifier impl pins once per batch, so both
            // probes land in one batch_lookup call.
            let keys = [0u64, 0, 0, 1_100, 0, 0, 0, 0, 50_100, 0];
            let mut out = [None, None];
            sharded.classify_batch(&keys, 5, &mut out);
            let a_state = out[0].map(|m| m.rule) == Some(2); // rule 2 at 1_100 = state A
            let b_state = out[1].map(|m| m.rule) == Some(100); // rule 100 at 50_100 = state A
            assert_eq!(a_state, b_state, "one transaction split across shard generations: {out:?}");
            assert_eq!(
                epoch.home_generations(),
                pinned_gens,
                "a pinned epoch's per-shard stamps moved under the writer"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
    });
}

/// Mid-run control traffic: runtime executions complete while fanned
/// updates and sharded retrains land, every batch internally pinned to one
/// logical generation; after quiescing, the shards serve exactly what a
/// whole-set handle fed the same stream serves.
#[test]
fn sharded_runtime_survives_mid_run_updates_and_retrains() {
    let (reference, set) = build(600, 47);
    let sharded = ShardedHandle::new(&set, &fast_cfg(), &plan(2), TupleMerge::build).unwrap();
    let trace = uniform_trace(&set, 4_000, 48);
    let rt = runtime(128);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = sharded.clone();
        let ref_writer = reference.clone();
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut i = 0u32;
            while !stop_ref.load(std::sync::atomic::Ordering::SeqCst) {
                let id = i % 600;
                let port = 30_000 + (i % 20_000) as u16;
                let batch = UpdateBatch::new()
                    .modify(FiveTuple::new().dst_port_exact(port).into_rule(id, id));
                writer.apply(&batch);
                ref_writer.apply(&batch);
                i += 1;
                if i % 512 == 0 {
                    let _ = writer.retrain();
                }
            }
        });
        for _ in 0..4 {
            let stats = rt.run(&sharded, &trace).expect("run under updates");
            assert!(stats.pps > 0.0);
            assert!(stats.generations.0 <= stats.generations.1);
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    // Quiesced: both control planes received the same stream; the sharded
    // run must now equal the whole-set sequential reference exactly.
    let seq = run_sequential(&reference, &trace);
    let stats = rt.run(&sharded, &trace).unwrap();
    assert_eq!(stats.checksum, seq.checksum, "post-quiesce sharded ≠ whole-set");
    assert!(sharded.generation() > 1, "updates must have published epochs");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Property: after every fanned update batch — inserts, removes, and
    /// modifies that move rules across shards — the sharded runtime's
    /// checksum equals `run_sequential` over a whole-set handle fed the
    /// same transactions, for random shard counts, strategies and batches.
    #[test]
    fn prop_sharded_equals_whole_set_under_update_batches(
        seed in 0u64..1_000,
        shards in 2usize..5,
        hash_steer in proptest::collection::vec(0u8..2, 1),
        ops in proptest::collection::vec((0u8..3, 0u16..60_000, 0u32..160), 4..40),
        batch_size in 1usize..4,
    ) {
        // 120 base rules with unique priorities (= ids), non-overlapping.
        let rules: Vec<_> = (0..120u16)
            .map(|i| {
                FiveTuple::new()
                    .dst_port_range(i * 500, i * 500 + 450)
                    .into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let strategy =
            if hash_steer[0] == 0 { ShardStrategy::Range } else { ShardStrategy::Hash };
        let cfg = ShardPlanConfig { shards, dim: Some(3), strategy };
        let reference =
            ClassifierHandle::new(&set, &fast_cfg(), nm_common::LinearSearch::build).unwrap();
        let sharded =
            ShardedHandle::new(&set, &fast_cfg(), &cfg, nm_common::LinearSearch::build).unwrap();
        let trace = uniform_trace(&set, 1_500, seed ^ 0xfeed);
        let rt = runtime(64);

        // Apply the op stream in batches of `batch_size` transactions,
        // verifying full equivalence after each transaction lands.
        for chunk in ops.chunks(batch_size.max(1)) {
            let mut batch = UpdateBatch::new();
            for &(kind, port, id) in chunk {
                // Priority = id keeps priorities unique across the stream.
                batch = match kind {
                    0 => batch.insert(
                        FiveTuple::new().dst_port_exact(port).into_rule(1_000 + id, 1_000 + id),
                    ),
                    1 => batch.remove(id),
                    _ => batch.modify(
                        FiveTuple::new()
                            .dst_port_range(port, port.saturating_add(90))
                            .into_rule(id, id),
                    ),
                };
            }
            let ra = reference.apply(&batch);
            let rb = sharded.apply(&batch);
            prop_assert_eq!(ra, rb, "fan-out accounting diverged");
            prop_assert_eq!(
                ClassifierHandle::generation(&reference) > 1,
                ShardedHandle::generation(&sharded) > 1,
                "publish parity"
            );
            let seq = run_sequential(&reference, &trace);
            let run = rt.run(&sharded, &trace).unwrap();
            prop_assert_eq!(seq.checksum, run.checksum, "verdicts diverged after a batch");
            // No batch mixed generations: the quiesced run pinned exactly
            // one logical generation throughout.
            prop_assert_eq!(run.generations.0, run.generations.1);
        }
    }
}
