//! The workspace's master correctness test: every engine must agree with
//! linear search on every generated workload family.
//!
//! This is the property the whole paper rests on — NuevoMatch is only an
//! *accelerator*; its classification results must be bit-identical to the
//! baseline's, which must be identical to brute force.

use nm_classbench::{generate, stanford_fib, AppKind};
use nm_common::{Classifier, LinearSearch, RuleSet};
use nm_cutsplit::CutSplit;
use nm_neurocuts::{NeuroCuts, NeuroCutsConfig};
use nm_trace::{caida_like_trace, uniform_trace, zipf_trace, CaidaLikeConfig};
use nm_tuplemerge::{TupleMerge, TupleSpaceSearch};
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams};

fn engines(set: &RuleSet) -> Vec<(String, Box<dyn Classifier>)> {
    let nc_cfg = NeuroCutsConfig { iterations: 6, sample: 512, ..Default::default() };
    let nm_cfg = NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 512, ..Default::default() },
        ..Default::default()
    };
    let nm_cfg_no_et = NuevoMatchConfig { early_termination: false, ..nm_cfg.clone() };
    vec![
        ("tss".into(), Box::new(TupleSpaceSearch::build(set))),
        ("tm".into(), Box::new(TupleMerge::build(set))),
        ("cs".into(), Box::new(CutSplit::build(set))),
        ("nc".into(), Box::new(NeuroCuts::with_config(set, nc_cfg))),
        ("nm/tm".into(), Box::new(NuevoMatch::build(set, &nm_cfg, TupleMerge::build).unwrap())),
        (
            "nm/cs-noet".into(),
            Box::new(NuevoMatch::build(set, &nm_cfg_no_et, CutSplit::build).unwrap()),
        ),
    ]
}

fn check_traces(name: &str, set: &RuleSet) {
    let oracle = LinearSearch::build(set);
    let engines = engines(set);
    let traces = [
        ("uniform", uniform_trace(set, 1_500, 1)),
        ("zipf", zipf_trace(set, 1_500, 1.2, 2)),
        ("caida-like", caida_like_trace(set, 1_500, CaidaLikeConfig::default(), 3)),
    ];
    for (tname, trace) in &traces {
        for key in trace.iter() {
            let want = oracle.classify(key);
            for (ename, engine) in &engines {
                assert_eq!(
                    engine.classify(key),
                    want,
                    "{ename} diverged from linear search on {name}/{tname}, key {key:?}"
                );
            }
        }
    }
}

#[test]
fn acl_profile_all_engines_agree() {
    check_traces("acl", &generate(AppKind::Acl, 1_200, 7));
}

#[test]
fn fw_profile_all_engines_agree() {
    check_traces("fw", &generate(AppKind::Fw, 1_200, 8));
}

#[test]
fn ipc_profile_all_engines_agree() {
    check_traces("ipc", &generate(AppKind::Ipc, 1_200, 9));
}

#[test]
fn stanford_fib_all_engines_agree() {
    check_traces("stanford", &stanford_fib(1_500, 10));
}

#[test]
fn low_diversity_blend_all_engines_agree() {
    let base = generate(AppKind::Acl, 1_000, 11);
    let blended = nm_classbench::blend_low_diversity(&base, 0.5, 8, 12);
    check_traces("lowdiv", &blended);
}

#[test]
fn random_misses_agree_too() {
    // Keys not drawn from rules: mostly misses; engines must agree on None.
    let set = generate(AppKind::Acl, 800, 13);
    let oracle = LinearSearch::build(&set);
    let engines = engines(&set);
    let mut rng = nm_common::SplitMix64::new(14);
    for _ in 0..2_000 {
        let key = [
            rng.next_u64() & 0xffff_ffff,
            rng.next_u64() & 0xffff_ffff,
            rng.below(65_536),
            rng.below(65_536),
            rng.below(256),
        ];
        let want = oracle.classify(&key);
        for (ename, engine) in &engines {
            assert_eq!(engine.classify(&key), want, "{ename} diverged on random key");
        }
    }
}
