//! Property-based tests over the workspace's core invariants.

use nm_common::range::low_mask;
use nm_common::Classifier;
use nm_common::{FieldRange, FieldsSpec, LinearSearch, RuleSet, SplitMix64};
use proptest::prelude::*;

/// Strategy: a sorted list of disjoint inclusive ranges in a 16-bit domain.
fn disjoint_ranges() -> impl Strategy<Value = Vec<FieldRange>> {
    proptest::collection::vec(0u64..65_536, 2..80).prop_map(|mut cuts| {
        cuts.sort_unstable();
        cuts.dedup();
        cuts.chunks_exact(2)
            .map(|c| FieldRange::new(c[0], c[1]))
            .scan(None::<u64>, |prev, r| {
                let keep = prev.map_or(true, |p| r.lo > p);
                if keep {
                    *prev = Some(r.hi);
                    Some(Some(r))
                } else {
                    Some(None)
                }
            })
            .flatten()
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The paper's Theorem A.13 as a property: for arbitrary disjoint range
    /// sets, every covered key's true index lies within predicted ± bound.
    #[test]
    fn rqrmi_bound_holds(ranges in disjoint_ranges()) {
        prop_assume!(!ranges.is_empty());
        let params = nuevomatch::RqRmiParams {
            samples_init: 128,
            max_attempts: 2,
            ..Default::default()
        };
        let model = nuevomatch::rqrmi::train_rqrmi(&ranges, 16, &params).unwrap();
        let mut rng = SplitMix64::new(1);
        for (idx, r) in ranges.iter().enumerate() {
            for key in [r.lo, r.hi, rng.range_inclusive(r.lo, r.hi)] {
                let (pred, err) = model.predict(key);
                let dist = (pred as i64 - idx as i64).unsigned_abs();
                prop_assert!(dist <= err as u64,
                    "key {key}: idx {idx} pred {pred} err {err}");
            }
        }
    }

    /// Interval scheduling maximisation is optimal (checked against brute
    /// force over all subsets for small inputs).
    #[test]
    fn interval_scheduling_is_optimal(ranges in proptest::collection::vec((0u64..256, 0u64..64), 1..10)) {
        let rows: Vec<Vec<FieldRange>> = ranges
            .iter()
            .map(|&(lo, w)| vec![FieldRange::new(lo, lo + w)])
            .collect();
        let set = RuleSet::from_ranges(FieldsSpec::single("f", 16), rows).unwrap();
        let ids: Vec<u32> = (0..set.len() as u32).collect();
        let greedy = nuevomatch::iset::largest_iset_in_dim(&set, &ids, 0).len();
        // Brute force: largest subset with pairwise-disjoint ranges.
        let n = set.len();
        let mut best = 0usize;
        for mask in 0u32..(1 << n) {
            let chosen: Vec<&FieldRange> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| &set.rule(i as u32).fields[0])
                .collect();
            let ok = chosen.iter().enumerate().all(|(i, a)| {
                chosen.iter().skip(i + 1).all(|b| !a.overlaps(b))
            });
            if ok {
                best = best.max(chosen.len());
            }
        }
        prop_assert_eq!(greedy, best);
    }

    /// Range→prefix decomposition covers the range exactly with disjoint
    /// aligned blocks.
    #[test]
    fn to_prefixes_exact_cover(lo in 0u64..65_536, w in 0u64..4_096) {
        let hi = (lo + w).min(65_535);
        let r = FieldRange::new(lo, hi);
        let blocks = r.to_prefixes(16);
        let mut cursor = lo;
        for (base, plen) in blocks {
            prop_assert_eq!(base, cursor, "blocks must tile left to right");
            let host = 16 - plen;
            prop_assert_eq!(base & low_mask(host), 0, "blocks must be aligned");
            cursor = base + low_mask(host) + 1;
        }
        prop_assert_eq!(cursor, hi + 1, "blocks must end at the range end");
    }

    /// The covering prefix contains the whole range.
    #[test]
    fn covering_prefix_covers(lo in 0u64..65_536, w in 0u64..65_536) {
        let hi = (lo + w).min(65_535);
        let r = FieldRange::new(lo, hi);
        let (base, plen) = r.covering_prefix(16);
        let block = FieldRange::from_prefix(base, plen, 16);
        prop_assert!(block.covers(&r));
    }

    /// The tuple-table hashing invariant TupleMerge correctness rests on:
    /// every value inside a rule's range masks to the rule's own masked
    /// value under any tuple the rule fits in.
    #[test]
    fn tuple_mask_invariant(lo in 0u64..65_000, w in 0u64..512, probe in 0u64..512) {
        use nm_tuplemerge::tuple::Tuple;
        let hi = (lo + w).min(65_535);
        let r = FieldRange::new(lo, hi);
        let spec = FieldsSpec::single("port", 16);
        let natural = Tuple::natural(&[r], &spec);
        let v = lo + probe.min(hi - lo);
        // For every table length <= the natural length:
        for len in 0..=natural.0[0] {
            let table = Tuple(vec![len]);
            prop_assert_eq!(
                table.mask_value(0, v, 16),
                table.mask_value(0, r.lo, 16),
                "len {} value {}", len, v
            );
        }
    }

    /// NuevoMatch over arbitrary 2-field boxes agrees with linear search.
    #[test]
    fn nuevomatch_agrees_on_arbitrary_boxes(
        boxes in proptest::collection::vec((0u64..60_000, 0u64..8_000, 0u64..60_000, 0u64..8_000), 1..60),
        probes in proptest::collection::vec((0u64..65_536, 0u64..65_536), 40),
    ) {
        let rows: Vec<Vec<FieldRange>> = boxes
            .iter()
            .map(|&(lo0, w0, lo1, w1)| {
                vec![
                    FieldRange::new(lo0, (lo0 + w0).min(65_535)),
                    FieldRange::new(lo1, (lo1 + w1).min(65_535)),
                ]
            })
            .collect();
        let set = RuleSet::from_ranges(FieldsSpec::uniform(2, 16), rows).unwrap();
        let cfg = nuevomatch::NuevoMatchConfig {
            min_iset_coverage: 0.0,
            rqrmi: nuevomatch::RqRmiParams { samples_init: 128, max_attempts: 2, ..Default::default() },
            ..Default::default()
        };
        let nm = nuevomatch::NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        let oracle = LinearSearch::build(&set);
        for &(a, b) in &probes {
            prop_assert_eq!(nm.classify(&[a, b]), oracle.classify(&[a, b]));
        }
        // Probe rule corners too (the adversarial points).
        for rule in set.rules().iter().take(20) {
            let k = rule.witness_key();
            prop_assert_eq!(nm.classify(&k), oracle.classify(&k));
        }
    }

    /// ClassBench parser round-trip through the serialiser.
    #[test]
    fn parser_roundtrip(seed in 0u64..500) {
        let set = nm_classbench::generate(nm_classbench::AppKind::Ipc, 40, seed);
        let text = nm_classbench::parse::to_classbench(&set);
        let back = nm_classbench::parse_classbench(&text).unwrap();
        prop_assert_eq!(back.len(), set.len());
        for (a, b) in set.rules().iter().zip(back.rules()) {
            prop_assert_eq!(&a.fields, &b.fields);
        }
    }

    /// TupleMerge under random update interleavings equals a fresh build.
    /// Ops flow through the transactional `UpdateBatch` path (one batch per
    /// op keeps the interleaving maximal).
    #[test]
    fn tuplemerge_updates_equal_rebuild(ops in proptest::collection::vec((0u64..3, 0u64..50), 1..40)) {
        use nm_common::{BatchUpdatable, FiveTuple, Rule, UpdateBatch};
        let base = nm_classbench::generate(nm_classbench::AppKind::Acl, 50, 77);
        let mut tm = nm_tuplemerge::TupleMerge::build(&base);
        let mut rules: Vec<Rule> = base.rules().to_vec();
        let mut next = 100u32;
        for &(kind, x) in &ops {
            match kind {
                0 => {
                    let id = x as u32;
                    tm.apply(&UpdateBatch::new().remove(id));
                    rules.retain(|r| r.id != id);
                }
                1 => {
                    let rule = FiveTuple::new()
                        .dst_port_exact((x * 997 % 65_536) as u16)
                        .into_rule(next, next);
                    next += 1;
                    tm.apply(&UpdateBatch::new().insert(rule.clone()));
                    rules.push(rule);
                }
                _ => {
                    let id = x as u32;
                    let rule = FiveTuple::new()
                        .src_port_range((x * 131 % 60_000) as u16, (x * 131 % 60_000) as u16 + 100)
                        .into_rule(id, id);
                    tm.apply(&UpdateBatch::new().modify(rule.clone()));
                    rules.retain(|r| r.id != id);
                    rules.push(rule);
                }
            }
        }
        let oracle = LinearSearch::from_rules(rules);
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            let key = [
                rng.next_u64() & 0xffff_ffff,
                rng.next_u64() & 0xffff_ffff,
                rng.below(65_536),
                rng.below(65_536),
                rng.below(256),
            ];
            prop_assert_eq!(tm.classify(&key), oracle.classify(&key));
        }
    }
}
