//! Adversarial and boundary-condition stress tests across the stack.

use nm_common::{Classifier, FieldRange, FieldsSpec, FiveTuple, LinearSearch, RuleSet, SplitMix64};
use nm_tuplemerge::TupleMerge;
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams};

fn fast_cfg() -> NuevoMatchConfig {
    NuevoMatchConfig {
        min_iset_coverage: 0.0,
        rqrmi: RqRmiParams { samples_init: 512, ..Default::default() },
        ..Default::default()
    }
}

/// f32 resolution stress: at the top of a 32-bit domain, adjacent keys are
/// 256 ULPs apart in key space but collapse to ~the same f32. Dense exact
/// rules up there force the error bounds to absorb quantisation collapse.
#[test]
fn rqrmi_survives_f32_quantisation_collapse() {
    let base = u32::MAX as u64 - 20_000;
    let ranges: Vec<FieldRange> = (0..10_000).map(|i| FieldRange::exact(base + i * 2)).collect();
    let model = nuevomatch::train_rqrmi(&ranges, 32, &RqRmiParams::default()).unwrap();
    for (idx, r) in ranges.iter().enumerate().step_by(7) {
        let (pred, err) = model.predict(r.lo);
        let dist = (pred as i64 - idx as i64).unsigned_abs();
        assert!(dist <= err as u64, "key {}: dist {dist} > bound {err}", r.lo);
    }
}

/// Rules and keys at the extreme domain corners (0 and 2^32−1, port 65535,
/// proto 255).
#[test]
fn domain_corners() {
    let rules = vec![
        FiveTuple::new().src_prefix_raw(0, 32).into_rule(0, 0),
        FiveTuple::new().src_prefix_raw(u32::MAX, 32).into_rule(1, 1),
        FiveTuple::new().dst_port_exact(65_535).proto_exact(255).into_rule(2, 2),
        FiveTuple::new().dst_port_exact(0).into_rule(3, 3),
    ];
    let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
    let oracle = LinearSearch::build(&set);
    let nm = NuevoMatch::build(&set, &fast_cfg(), TupleMerge::build).unwrap();
    let keys: Vec<[u64; 5]> = vec![
        [0, 0, 0, 0, 0],
        [u32::MAX as u64, 0, 0, 0, 0],
        [u32::MAX as u64, u32::MAX as u64, 65_535, 65_535, 255],
        [5, 5, 5, 0, 5],
        [5, 5, 5, 65_535, 255],
    ];
    for key in keys {
        assert_eq!(nm.classify(&key), oracle.classify(&key), "key {key:?}");
    }
}

/// TupleMerge under extreme bucket pressure: thousands of rules under one
/// relaxed tuple, forcing repeated splits (and, for identical natural
/// tuples, the accept-long-bucket fallback).
#[test]
fn tuplemerge_split_cascade() {
    let mut rng = SplitMix64::new(1);
    let mut rules = Vec::new();
    // 2 000 exact dst IPs under the same /8 (split cascade refines the mask)
    for i in 0..2_000u32 {
        rules.push(
            FiveTuple::new()
                .dst_prefix_raw(0x0a00_0000 | rng.below(1 << 24) as u32, 32)
                .into_rule(i, i),
        );
    }
    // plus 100 rules with *identical* natural tuples and identical masked
    // bits (same /16 block, wildcard everything else): unsplittable bucket.
    for i in 0..100u32 {
        rules.push(
            FiveTuple::new()
                .src_prefix_raw(0xc0a8_0000, 16)
                .dst_port_exact(i as u16)
                .into_rule(2_000 + i, 2_000 + i),
        );
    }
    let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
    let tm = TupleMerge::build(&set);
    let oracle = LinearSearch::build(&set);
    let mut rng = SplitMix64::new(2);
    for _ in 0..2_000 {
        let key = if rng.below(2) == 0 {
            [
                0xc0a8_0000u64 | rng.below(1 << 16),
                0x0a00_0000 | rng.below(1 << 24),
                rng.below(65_536),
                rng.below(100),
                rng.below(256),
            ]
        } else {
            [rng.next_u64() & 0xffff_ffff, rng.next_u64() & 0xffff_ffff, 0, 0, 6]
        };
        assert_eq!(tm.classify(&key), oracle.classify(&key), "key {key:?}");
    }
}

/// The ClassBench parser must reject garbage without panicking.
#[test]
fn parser_never_panics_on_garbage() {
    let good = "@1.2.3.4/32\t5.6.7.8/0\t0 : 65535\t80 : 80\t0x06/0xFF";
    let mutations: Vec<String> = (0..good.len())
        .flat_map(|i| {
            let mut b = good.as_bytes().to_vec();
            let deleted: String = {
                let mut c = b.clone();
                c.remove(i);
                String::from_utf8_lossy(&c).into_owned()
            };
            b[i] = b'!';
            vec![String::from_utf8_lossy(&b).into_owned(), deleted]
        })
        .collect();
    for m in mutations {
        let _ = nm_classbench::parse_classbench(&m); // Ok or Err, never panic
    }
    // Structured garbage.
    for bad in [
        "@",
        "@/",
        "@1.2.3.4/33 0.0.0.0/0 0 : 0 0 : 0 0x06/0xFF",
        "@1.2.3.4/32 0.0.0.0/0 2 : 1 0 : 0 0x06/0xFF",
        "@1.2.3.4/32 0.0.0.0/0 0 : 0 0 : 0 0x06",
        "@1.2.3.4/32 0.0.0.0/0 0 : 0 0 : 0 zz/0xFF",
        "@999.2.3.4/32 0.0.0.0/0 0 : 0 0 : 0 0x06/0xFF",
    ] {
        assert!(nm_classbench::parse_classbench(bad).is_err(), "accepted: {bad}");
    }
}

/// Wire → classify pipeline invariant: any parseable frame classifies
/// identically through the cache-fronted engine and the oracle.
#[test]
fn wire_to_classifier_pipeline() {
    use nm_common::wire::{build_ipv4_frame, parse_five_tuple};
    use nuevomatch::system::FlowCache;
    let set = nm_classbench::generate(nm_classbench::AppKind::Ipc, 800, 5);
    let oracle = LinearSearch::build(&set);
    let cached =
        FlowCache::new(NuevoMatch::build(&set, &fast_cfg(), TupleMerge::build).unwrap(), 256);
    let mut rng = SplitMix64::new(7);
    for _ in 0..3_000 {
        let key = [
            rng.next_u64() & 0xffff_ffff,
            rng.next_u64() & 0xffff_ffff,
            rng.below(65_536),
            rng.below(65_536),
            rng.below(256),
        ];
        let frame = build_ipv4_frame(&key);
        let parsed = parse_five_tuple(&frame).unwrap();
        // Portless protocols drop ports on the wire — the classifier must
        // agree with the oracle on the *parsed* key either way.
        assert_eq!(cached.classify(&parsed), oracle.classify(&parsed));
    }
    assert!(cached.stats().hits + cached.stats().misses == 3_000);
}

/// FlowCache + updates: stale verdicts must not survive invalidation.
#[test]
fn flow_cache_invalidation_after_update() {
    use nuevomatch::system::FlowCache;
    let rules: Vec<_> = (0..50u16)
        .map(|i| FiveTuple::new().dst_port_exact(i).into_rule(i as u32, i as u32))
        .collect();
    let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
    let nm = NuevoMatch::build(&set, &fast_cfg(), TupleMerge::build).unwrap();
    let mut cached = FlowCache::new(nm, 128);
    let key = [0u64, 0, 0, 7, 0];
    assert_eq!(cached.classify(&key).unwrap().rule, 7);
    // Remove rule 7 through the inner engine, then invalidate.
    cached.inner_mut().remove(7);
    cached.invalidate_all();
    assert_eq!(cached.classify(&key), None, "stale cached verdict survived");
}

/// A rule-set where *every* rule overlaps every other (nested ranges):
/// centrality = n, one rule per iSet, everything lands in the remainder.
#[test]
fn fully_nested_rules_degrade_gracefully() {
    let n = 200u64;
    let rows: Vec<Vec<FieldRange>> = (0..n).map(|i| vec![FieldRange::new(i, 2 * n - i)]).collect();
    let set = RuleSet::from_ranges(FieldsSpec::single("f", 16), rows).unwrap();
    let cfg = NuevoMatchConfig { max_isets: 4, min_iset_coverage: 0.25, ..fast_cfg() };
    let nm = NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap();
    // Each iSet can hold exactly one nested rule -> coverage below the 25%
    // gate -> full fallback.
    assert!(nm.isets().is_empty());
    let oracle = LinearSearch::build(&set);
    for key in 0..2 * n {
        assert_eq!(nm.classify(&[key]), oracle.classify(&[key]));
    }
}

/// Equal priorities: the *winning priority* is guaranteed across engines;
/// which of the tied rules is reported is unspecified (see the `Classifier`
/// trait docs — early-termination floors use strict priority comparison, so
/// id-level tie-breaking cannot survive engine boundaries). Real rule-sets
/// use unique priorities, as OpenFlow effectively requires.
#[test]
fn priority_ties_agree_on_winning_priority() {
    let rules = vec![
        FiveTuple::new().dst_port_range(0, 100).into_rule(5, 9),
        FiveTuple::new().dst_port_range(50, 150).into_rule(2, 9), // same priority
        FiveTuple::new().dst_port_range(60, 70).into_rule(9, 9),  // same priority
    ];
    let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
    let oracle = LinearSearch::build(&set);
    let nm = NuevoMatch::build(&set, &fast_cfg(), TupleMerge::build).unwrap();
    let tm = TupleMerge::build(&set);
    for port in [60u64, 65, 70] {
        let key = [0, 0, 0, port, 0];
        let want = oracle.classify(&key).unwrap();
        assert_eq!(want.priority, 9);
        assert_eq!(nm.classify(&key).unwrap().priority, 9);
        assert_eq!(tm.classify(&key).unwrap().priority, 9);
        // LinearSearch itself does guarantee the id tie-break.
        assert_eq!(want.rule, 2);
    }
}
