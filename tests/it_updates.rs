//! Update-path integration: a long randomized update stream against
//! NuevoMatch (TupleMerge remainder) mirrored into a linear-search oracle,
//! with drift tracking and a rebuild at the end (the §3.9 lifecycle).

use nm_classbench::{generate, AppKind};
use nm_common::{Classifier, FiveTuple, LinearSearch, Rule, RuleSet, SplitMix64};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams};

fn cfg() -> NuevoMatchConfig {
    NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 512, ..Default::default() },
        ..Default::default()
    }
}

/// Maintains the "current truth" rule list alongside the engines.
struct Mirror {
    rules: Vec<Rule>,
}

impl Mirror {
    fn remove(&mut self, id: u32) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        self.rules.len() != before
    }
    fn insert(&mut self, rule: Rule) {
        self.remove(rule.id);
        self.rules.push(rule);
    }
    fn oracle(&self) -> LinearSearch {
        LinearSearch::from_rules(self.rules.clone())
    }
}

#[test]
fn long_update_stream_stays_correct() {
    let n = 1_000usize;
    let set = generate(AppKind::Acl, n, 21);
    let mut nm = NuevoMatch::build(&set, &cfg(), TupleMerge::build).unwrap();
    let mut mirror = Mirror { rules: set.rules().to_vec() };
    let mut rng = SplitMix64::new(22);
    let mut next_id = n as u32;

    for step in 0..400 {
        match rng.below(3) {
            0 => {
                let id = rng.below((n + step) as u64) as u32;
                assert_eq!(nm.remove(id), mirror.remove(id), "remove({id}) presence mismatch");
            }
            1 => {
                let lo = rng.below(60_000) as u16;
                let id = rng.below(n as u64) as u32;
                let rule = FiveTuple::new()
                    .dst_port_range(lo, lo.saturating_add(500))
                    .src_prefix_raw(rng.next_u64() as u32, 16)
                    .into_rule(id, id);
                nm.modify(rule.clone());
                mirror.insert(rule);
            }
            _ => {
                let rule = FiveTuple::new()
                    .dst_port_exact(rng.below(65_536) as u16)
                    .into_rule(next_id, next_id);
                next_id += 1;
                nm.insert(rule.clone());
                mirror.insert(rule);
            }
        }
        // Spot-check agreement every 40 updates.
        if step % 40 == 39 {
            let oracle = mirror.oracle();
            for _ in 0..200 {
                let key = [
                    rng.next_u64() & 0xffff_ffff,
                    rng.next_u64() & 0xffff_ffff,
                    rng.below(65_536),
                    rng.below(65_536),
                    rng.below(256),
                ];
                assert_eq!(nm.classify(&key), oracle.classify(&key), "step {step}");
            }
        }
    }
    assert!(nm.moved_to_remainder() > 0);
    assert!(nm.remainder_fraction() > 0.0);

    // The rebuild cycle: retrain from the mirrored truth, drift resets.
    let rebuilt_set = RuleSet::new(set.spec().clone(), mirror.rules.clone()).unwrap();
    let nm2 = NuevoMatch::build(&rebuilt_set, &cfg(), TupleMerge::build).unwrap();
    assert_eq!(nm2.moved_to_remainder(), 0);
    let oracle = mirror.oracle();
    for key in uniform_trace(&rebuilt_set, 1_000, 23).iter() {
        assert_eq!(nm2.classify(key), oracle.classify(key));
    }
}

#[test]
fn action_change_requires_no_structure_change() {
    // §3.9 type (i): actions live outside the classifier; the match result
    // (rule id) is the handle. Verify ids are stable across unrelated
    // updates.
    let set = generate(AppKind::Acl, 500, 24);
    let mut nm = NuevoMatch::build(&set, &cfg(), TupleMerge::build).unwrap();
    let trace = uniform_trace(&set, 300, 25);
    let before: Vec<_> = trace.iter().map(|k| nm.classify(k)).collect();
    // Delete a rule that the probe keys do not use, insert an unrelated one.
    let unused_id = 499u32;
    nm.remove(unused_id);
    nm.insert(FiveTuple::new().dst_port_exact(64_999).proto_exact(200).into_rule(9_999, 9_999));
    for (key, want) in trace.iter().zip(&before) {
        let got = nm.classify(key);
        if want.map(|m| m.rule) != Some(unused_id) && got.map(|m| m.rule) != Some(9_999) {
            assert_eq!(got, *want);
        }
    }
}
