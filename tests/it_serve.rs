//! Loopback integration test for the `system::serve` wire front-end.
//!
//! The correctness bar mirrors `it_handle`, but across real sockets:
//! concurrent UDP and TCP clients classify through the served data plane
//! while the control plane applies update batches and retrains mid-run.
//! Every verdict that comes back carries the generation its batch was
//! pinned to, and must equal a `LinearSearch` reference rebuilt from the
//! rule truth *at that generation* — not the latest truth. Two layers
//! enforce it:
//!
//! * client-side: each response is replayed against the generation's truth
//!   from a shared history map (unknown generations are skipped — the
//!   response can arrive before the writer records the truth);
//! * server-side: `validate_every = 1` makes the in-loop oracle validator
//!   replay every served request at the pinned generation; a single torn
//!   generation (a batch mixing snapshots) lands in `stats.mismatches`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nm_common::{
    Classifier, FieldsSpec, FiveTuple, LinearSearch, Rule, RuleSet, ShardPlanConfig, ShardStrategy,
    SplitMix64, UpdateBatch,
};
use nm_tuplemerge::TupleMerge;
use nuevomatch::{
    ClassifierHandle, NuevoMatchConfig, OracleTable, RqRmiParams, ServeClient, ServeConfig, Server,
    ShardedHandle, Transport,
};

const N_RULES: u16 = 300;

fn base_set() -> RuleSet {
    let rules: Vec<_> = (0..N_RULES)
        .map(|i| {
            FiveTuple::new().dst_port_range(i * 200, i * 200 + 150).into_rule(i as u32, i as u32)
        })
        .collect();
    RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
}

fn cfg() -> NuevoMatchConfig {
    NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
        ..Default::default()
    }
}

/// Generation-keyed truth history shared between the writer and the
/// checking clients.
type History = Arc<Mutex<HashMap<u64, Arc<LinearSearch>>>>;

/// Records `truth` at `generation` in both the server's oracle table and
/// the client-side history.
fn publish(oracle: &OracleTable, history: &History, truth: &[Rule], generation: u64) {
    oracle.publish(generation, LinearSearch::from_rules(truth.to_vec()));
    history.lock().unwrap().insert(generation, Arc::new(LinearSearch::from_rules(truth.to_vec())));
}

/// Modifies `ops` random rules to fresh dst-port ranges, mutating `truth`
/// in lock-step with the batch it returns.
fn drift(truth: &mut [Rule], rng: &mut SplitMix64, ops: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let i = rng.below(truth.len() as u64) as usize;
        let lo = rng.below(60_000) as u16;
        let rule = FiveTuple::new()
            .dst_port_range(lo, lo.saturating_add(180))
            .into_rule(truth[i].id, truth[i].priority);
        truth[i] = rule.clone();
        batch = batch.modify(rule);
    }
    batch
}

/// One checking client: closed-loop requests with a sweeping dst-port key,
/// each response replayed against the truth at its reported generation.
/// Returns (responses, generation-checked responses).
fn checking_client(
    addr: std::net::SocketAddr,
    udp: bool,
    history: &History,
    stop: &AtomicBool,
) -> (u64, u64) {
    let mut client =
        if udp { ServeClient::udp(addr) } else { ServeClient::tcp(addr) }.expect("client");
    let (mut served, mut checked) = (0u64, 0u64);
    let mut i = 0u64;
    while !stop.load(SeqCst) {
        let key = [0u64, 0, 0, (i * 37) % 65_536, 0];
        match client.call(i, &key, Duration::from_millis(500)) {
            Ok(frame) => {
                served += 1;
                let oracle = history.lock().unwrap().get(&frame.generation).cloned();
                if let Some(oracle) = oracle {
                    let expect = oracle.classify(&key);
                    assert_eq!(
                        frame.verdict, expect,
                        "torn verdict at generation {} for key {key:?}",
                        frame.generation
                    );
                    checked += 1;
                }
            }
            // Loopback UDP may still drop under memory pressure; a lost
            // datagram is a timeout here, not a correctness failure.
            Err(ref e) if udp && e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(ref e) if udp && e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("client i/o: {e}"),
        }
        i += 1;
    }
    (served, checked)
}

#[test]
fn wire_verdicts_match_pinned_generation_reference_under_updates() {
    let set = base_set();
    let handle = ClassifierHandle::new(&set, &cfg(), TupleMerge::build).expect("build");
    let scfg = ServeConfig {
        transport: Transport::Both,
        max_batch: 32,
        deadline: Duration::from_micros(50),
        validate_every: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(handle.clone(), &scfg).expect("bind");
    let udp_addr = server.udp_addr().expect("udp bound");
    let tcp_addr = server.tcp_addr().expect("tcp bound");
    let oracle = server.oracle();

    let history: History = Arc::new(Mutex::new(HashMap::new()));
    let mut truth: Vec<Rule> = set.rules().to_vec();
    publish(&oracle, &history, &truth, handle.generation());

    let stop = AtomicBool::new(false);
    let total_served = AtomicU64::new(0);
    let total_checked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for udp in [true, false] {
            let addr = if udp { udp_addr } else { tcp_addr };
            let (history, stop) = (&history, &stop);
            let (total_served, total_checked) = (&total_served, &total_checked);
            scope.spawn(move || {
                let (served, checked) = checking_client(addr, udp, history, stop);
                total_served.fetch_add(served, SeqCst);
                total_checked.fetch_add(checked, SeqCst);
            });
        }

        // The control plane: 24 update batches, a retrain mid-run (which
        // bumps the generation while preserving the rule truth).
        let mut rng = SplitMix64::new(0x17_5e12);
        for round in 0..24 {
            let batch = drift(&mut truth, &mut rng, 8);
            handle.apply(&batch);
            publish(&oracle, &history, &truth, handle.generation());
            if round == 12 {
                handle.retrain().expect("mid-run retrain");
                publish(&oracle, &history, &truth, handle.generation());
            }
            std::thread::sleep(Duration::from_millis(4));
        }
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, SeqCst);
    });

    let stats = server.shutdown();
    let (served, checked) = (total_served.load(SeqCst), total_checked.load(SeqCst));
    assert!(served > 50, "clients barely ran: {served} responses");
    assert!(checked > 20, "generation checks barely ran: {checked} of {served}");
    assert_eq!(stats.mismatches, 0, "server-side oracle mismatches: {stats:?}");
    assert!(stats.validated > 0, "validator never sampled: {stats:?}");
    assert_eq!(stats.decode_errors, 0, "decode errors: {stats:?}");
    // Every response the clients got was also counted by the server.
    assert!(stats.responses >= served, "server counted {} < clients' {served}", stats.responses);
}

#[test]
fn sharded_plane_serves_coherent_epochs_over_the_wire() {
    let set = base_set();
    let plan = ShardPlanConfig { shards: 2, dim: None, strategy: ShardStrategy::Range };
    let sharded = ShardedHandle::new(&set, &cfg(), &plan, TupleMerge::build).expect("build");
    let scfg = ServeConfig {
        transport: Transport::Udp,
        max_batch: 16,
        deadline: Duration::from_micros(50),
        validate_every: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(sharded.clone(), &scfg).expect("bind");
    let addr = server.udp_addr().expect("udp bound");
    let oracle = server.oracle();

    let history: History = Arc::new(Mutex::new(HashMap::new()));
    let mut truth: Vec<Rule> = set.rules().to_vec();
    publish(&oracle, &history, &truth, sharded.generation());

    let stop = AtomicBool::new(false);
    let total_checked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let (history, stop, total_checked) = (&history, &stop, &total_checked);
        scope.spawn(move || {
            let (_, checked) = checking_client(addr, true, history, stop);
            total_checked.fetch_add(checked, SeqCst);
        });

        // Update fan-out across shard replicas under one logical
        // generation; every batch must publish a coherent epoch.
        let mut rng = SplitMix64::new(0x17_5e13);
        for _ in 0..16 {
            let batch = drift(&mut truth, &mut rng, 8);
            sharded.apply(&batch);
            publish(&oracle, history, &truth, sharded.generation());
            std::thread::sleep(Duration::from_millis(4));
        }
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, SeqCst);
    });

    let stats = server.shutdown();
    assert!(total_checked.load(SeqCst) > 10, "too few checked: {}", total_checked.load(SeqCst));
    assert_eq!(stats.mismatches, 0, "torn epoch on the sharded plane: {stats:?}");
    assert!(stats.validated > 0, "validator never sampled: {stats:?}");
}
