//! Loopback integration test for the `system::serve` wire front-end.
//!
//! The correctness bar mirrors `it_handle`, but across real sockets:
//! concurrent UDP and TCP clients classify through the served data plane
//! while the control plane applies update batches and retrains mid-run.
//! Every verdict that comes back carries the generation its batch was
//! pinned to, and must equal a `LinearSearch` reference rebuilt from the
//! rule truth *at that generation* — not the latest truth. Two layers
//! enforce it:
//!
//! * client-side: each response is replayed against the generation's truth
//!   from a shared history map (unknown generations are skipped — the
//!   response can arrive before the writer records the truth);
//! * server-side: `validate_every = 1` makes the in-loop oracle validator
//!   replay every served request at the pinned generation; a single torn
//!   generation (a batch mixing snapshots) lands in `stats.mismatches`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nm_common::{
    Classifier, FieldsSpec, FiveTuple, LinearSearch, Rule, RuleSet, ShardPlanConfig, ShardStrategy,
    SplitMix64, UpdateBatch,
};
use nm_tuplemerge::TupleMerge;
use nuevomatch::{
    ClassifierHandle, NuevoMatchConfig, OracleTable, ReaderKind, RqRmiParams, ServeClient,
    ServeConfig, Server, ShardedHandle, Transport,
};

const N_RULES: u16 = 300;

fn base_set() -> RuleSet {
    let rules: Vec<_> = (0..N_RULES)
        .map(|i| {
            FiveTuple::new().dst_port_range(i * 200, i * 200 + 150).into_rule(i as u32, i as u32)
        })
        .collect();
    RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
}

fn cfg() -> NuevoMatchConfig {
    NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
        ..Default::default()
    }
}

/// Generation-keyed truth history shared between the writer and the
/// checking clients.
type History = Arc<Mutex<HashMap<u64, Arc<LinearSearch>>>>;

/// Records `truth` at `generation` in both the server's oracle table and
/// the client-side history.
fn publish(oracle: &OracleTable, history: &History, truth: &[Rule], generation: u64) {
    oracle.publish(generation, LinearSearch::from_rules(truth.to_vec()));
    history.lock().unwrap().insert(generation, Arc::new(LinearSearch::from_rules(truth.to_vec())));
}

/// Modifies `ops` random rules to fresh dst-port ranges, mutating `truth`
/// in lock-step with the batch it returns.
fn drift(truth: &mut [Rule], rng: &mut SplitMix64, ops: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let i = rng.below(truth.len() as u64) as usize;
        let lo = rng.below(60_000) as u16;
        let rule = FiveTuple::new()
            .dst_port_range(lo, lo.saturating_add(180))
            .into_rule(truth[i].id, truth[i].priority);
        truth[i] = rule.clone();
        batch = batch.modify(rule);
    }
    batch
}

/// One checking client: closed-loop requests with a sweeping dst-port key,
/// each response replayed against the truth at its reported generation.
/// Returns (responses, generation-checked responses).
fn checking_client(
    addr: std::net::SocketAddr,
    udp: bool,
    history: &History,
    stop: &AtomicBool,
) -> (u64, u64) {
    let mut client =
        if udp { ServeClient::udp(addr) } else { ServeClient::tcp(addr) }.expect("client");
    let (mut served, mut checked) = (0u64, 0u64);
    let mut i = 0u64;
    while !stop.load(SeqCst) {
        let key = [0u64, 0, 0, (i * 37) % 65_536, 0];
        match client.call(i, &key, Duration::from_millis(500)) {
            Ok(frame) => {
                served += 1;
                let oracle = history.lock().unwrap().get(&frame.generation).cloned();
                if let Some(oracle) = oracle {
                    let expect = oracle.classify(&key);
                    assert_eq!(
                        frame.verdict, expect,
                        "torn verdict at generation {} for key {key:?}",
                        frame.generation
                    );
                    checked += 1;
                }
            }
            // Loopback UDP may still drop under memory pressure; a lost
            // datagram is a timeout here, not a correctness failure.
            Err(ref e) if udp && e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(ref e) if udp && e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("client i/o: {e}"),
        }
        i += 1;
    }
    (served, checked)
}

#[test]
fn wire_verdicts_match_pinned_generation_reference_under_updates() {
    let set = base_set();
    let handle = ClassifierHandle::new(&set, &cfg(), TupleMerge::build).expect("build");
    let scfg = ServeConfig {
        transport: Transport::Both,
        max_batch: 32,
        deadline: Duration::from_micros(50),
        validate_every: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(handle.clone(), &scfg).expect("bind");
    let udp_addr = server.udp_addr().expect("udp bound");
    let tcp_addr = server.tcp_addr().expect("tcp bound");
    let oracle = server.oracle();

    let history: History = Arc::new(Mutex::new(HashMap::new()));
    let mut truth: Vec<Rule> = set.rules().to_vec();
    publish(&oracle, &history, &truth, handle.generation());

    let stop = AtomicBool::new(false);
    let total_served = AtomicU64::new(0);
    let total_checked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for udp in [true, false] {
            let addr = if udp { udp_addr } else { tcp_addr };
            let (history, stop) = (&history, &stop);
            let (total_served, total_checked) = (&total_served, &total_checked);
            scope.spawn(move || {
                let (served, checked) = checking_client(addr, udp, history, stop);
                total_served.fetch_add(served, SeqCst);
                total_checked.fetch_add(checked, SeqCst);
            });
        }

        // The control plane: 24 update batches, a retrain mid-run (which
        // bumps the generation while preserving the rule truth).
        let mut rng = SplitMix64::new(0x17_5e12);
        for round in 0..24 {
            let batch = drift(&mut truth, &mut rng, 8);
            handle.apply(&batch);
            publish(&oracle, &history, &truth, handle.generation());
            if round == 12 {
                handle.retrain().expect("mid-run retrain");
                publish(&oracle, &history, &truth, handle.generation());
            }
            std::thread::sleep(Duration::from_millis(4));
        }
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, SeqCst);
    });

    let stats = server.shutdown();
    let (served, checked) = (total_served.load(SeqCst), total_checked.load(SeqCst));
    assert!(served > 50, "clients barely ran: {served} responses");
    assert!(checked > 20, "generation checks barely ran: {checked} of {served}");
    assert_eq!(stats.mismatches, 0, "server-side oracle mismatches: {stats:?}");
    assert!(stats.validated > 0, "validator never sampled: {stats:?}");
    assert_eq!(stats.decode_errors, 0, "decode errors: {stats:?}");
    // Every response the clients got was also counted by the server.
    assert!(stats.responses >= served, "server counted {} < clients' {served}", stats.responses);
}

#[test]
fn sharded_plane_serves_coherent_epochs_over_the_wire() {
    let set = base_set();
    let plan = ShardPlanConfig { shards: 2, dim: None, strategy: ShardStrategy::Range };
    let sharded = ShardedHandle::new(&set, &cfg(), &plan, TupleMerge::build).expect("build");
    let scfg = ServeConfig {
        transport: Transport::Udp,
        max_batch: 16,
        deadline: Duration::from_micros(50),
        validate_every: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(sharded.clone(), &scfg).expect("bind");
    let addr = server.udp_addr().expect("udp bound");
    let oracle = server.oracle();

    let history: History = Arc::new(Mutex::new(HashMap::new()));
    let mut truth: Vec<Rule> = set.rules().to_vec();
    publish(&oracle, &history, &truth, sharded.generation());

    let stop = AtomicBool::new(false);
    let total_checked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let (history, stop, total_checked) = (&history, &stop, &total_checked);
        scope.spawn(move || {
            let (_, checked) = checking_client(addr, true, history, stop);
            total_checked.fetch_add(checked, SeqCst);
        });

        // Update fan-out across shard replicas under one logical
        // generation; every batch must publish a coherent epoch.
        let mut rng = SplitMix64::new(0x17_5e13);
        for _ in 0..16 {
            let batch = drift(&mut truth, &mut rng, 8);
            sharded.apply(&batch);
            publish(&oracle, history, &truth, sharded.generation());
            std::thread::sleep(Duration::from_millis(4));
        }
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, SeqCst);
    });

    let stats = server.shutdown();
    assert!(total_checked.load(SeqCst) > 10, "too few checked: {}", total_checked.load(SeqCst));
    assert_eq!(stats.mismatches, 0, "torn epoch on the sharded plane: {stats:?}");
    assert!(stats.validated > 0, "validator never sampled: {stats:?}");
}

/// The `SO_REUSEPORT` reader fleet: at 1, 2 and 4 UDP readers (each with
/// a private socket when the platform supports `SO_REUSEPORT`, a shared
/// one otherwise), concurrent clients from distinct source ports classify
/// through the batched `recvmmsg`/`sendmmsg` path while updates and a
/// retrain land mid-run. The bar is the same as the single-reader test:
/// every verdict exact at its reported generation, zero server-side
/// validator mismatches, zero decode errors.
#[test]
fn reuseport_reader_fleet_serves_exact_generations() {
    let set = base_set();
    for readers in [1usize, 2, 4] {
        let handle = ClassifierHandle::new(&set, &cfg(), TupleMerge::build).expect("build");
        let scfg = ServeConfig {
            transport: Transport::Udp,
            max_batch: 32,
            deadline: Duration::from_micros(50),
            udp_readers: readers,
            validate_every: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(handle.clone(), &scfg).expect("bind");
        let addr = server.udp_addr().expect("udp bound");
        let oracle = server.oracle();

        let history: History = Arc::new(Mutex::new(HashMap::new()));
        let mut truth: Vec<Rule> = set.rules().to_vec();
        publish(&oracle, &history, &truth, handle.generation());

        let stop = AtomicBool::new(false);
        let total_served = AtomicU64::new(0);
        let total_checked = AtomicU64::new(0);
        std::thread::scope(|scope| {
            // Two clients per reader: each client socket binds its own
            // ephemeral source port, so the kernel's REUSEPORT flow hash
            // has enough distinct 4-tuples to exercise several sockets.
            for _ in 0..readers * 2 {
                let (history, stop) = (&history, &stop);
                let (total_served, total_checked) = (&total_served, &total_checked);
                scope.spawn(move || {
                    let (served, checked) = checking_client(addr, true, history, stop);
                    total_served.fetch_add(served, SeqCst);
                    total_checked.fetch_add(checked, SeqCst);
                });
            }

            let mut rng = SplitMix64::new(0x5e_7000 + readers as u64);
            for round in 0..16 {
                let batch = drift(&mut truth, &mut rng, 8);
                handle.apply(&batch);
                publish(&oracle, &history, &truth, handle.generation());
                if round == 8 {
                    handle.retrain().expect("mid-run retrain");
                    publish(&oracle, &history, &truth, handle.generation());
                }
                std::thread::sleep(Duration::from_millis(4));
            }
            std::thread::sleep(Duration::from_millis(40));
            stop.store(true, SeqCst);
        });

        let per_reader = server.per_reader_stats();
        let stats = server.shutdown();
        let served = total_served.load(SeqCst);
        assert!(served > 50, "readers={readers}: clients barely ran ({served} responses)");
        assert!(total_checked.load(SeqCst) > 20, "readers={readers}: too few generation checks");
        assert_eq!(stats.mismatches, 0, "readers={readers}: oracle mismatches: {stats:?}");
        assert!(stats.validated > 0, "readers={readers}: validator never sampled");
        assert_eq!(stats.decode_errors, 0, "readers={readers}: decode errors: {stats:?}");
        assert!(stats.responses >= served, "readers={readers}: responses undercounted");
        // Every reader registered exactly one tagged stats slot, and the
        // fleet-wide fold equals the per-reader sum.
        let udp_slots: Vec<_> =
            per_reader.iter().filter(|(kind, _)| *kind == ReaderKind::Udp).collect();
        assert_eq!(udp_slots.len(), readers, "readers={readers}: wrong slot count");
        let slot_requests: u64 = udp_slots.iter().map(|(_, st)| st.requests).sum();
        assert!(
            slot_requests <= stats.requests,
            "readers={readers}: per-reader sum {slot_requests} > fold {}",
            stats.requests
        );
    }
}

/// Malformed datagrams — truncated headers, bad lengths, oversized length
/// words, partial frame tails — must count as decode errors, never panic
/// a reader, and never wedge service for well-formed requests that follow.
#[test]
fn malformed_datagrams_are_counted_and_service_survives() {
    let set = base_set();
    let handle = ClassifierHandle::new(&set, &cfg(), TupleMerge::build).expect("build");
    let scfg = ServeConfig {
        transport: Transport::Udp,
        max_batch: 16,
        deadline: Duration::from_micros(50),
        udp_readers: 2,
        validate_every: 0,
        ..ServeConfig::default()
    };
    let server = Server::start(handle, &scfg).expect("bind");
    let addr = server.udp_addr().expect("udp bound");

    let junk = std::net::UdpSocket::bind("127.0.0.1:0").expect("junk socket");
    // Truncated length word.
    junk.send_to(&[0xff, 0xff], addr).expect("send");
    // Body length 13: not 8 + 8n.
    let mut bad = 13u32.to_le_bytes().to_vec();
    bad.extend_from_slice(&[0u8; 16]);
    junk.send_to(&bad, addr).expect("send");
    // Oversized length word (caps before allocating).
    junk.send_to(&u32::MAX.to_le_bytes(), addr).expect("send");
    // A valid frame followed by a truncated sibling in the same datagram:
    // datagrams are self-contained, the tail cannot complete later.
    let mut mixed = Vec::new();
    nm_common::frame::encode_request(&mut mixed, 1, &[0, 0, 0, 100, 0]);
    mixed.extend_from_slice(&44u32.to_le_bytes());
    mixed.extend_from_slice(&[0u8; 3]);
    junk.send_to(&mixed, addr).expect("send");

    // Well-formed requests still get exact answers on the same port.
    let mut client = ServeClient::udp(addr).expect("client");
    let truth = LinearSearch::from_rules(set.rules().to_vec());
    let mut answered = 0u64;
    for i in 0..64u64 {
        let key = [0u64, 0, 0, (i * 37) % 65_536, 0];
        match client.call(i, &key, Duration::from_millis(500)) {
            Ok(frame) => {
                assert_eq!(frame.verdict, truth.classify(&key), "verdict for {key:?}");
                answered += 1;
            }
            Err(ref e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("client i/o: {e}"),
        }
    }
    assert!(answered > 32, "service wedged after junk: {answered}/64 answered");

    let stats = server.shutdown();
    // The three broken datagrams plus the truncated tail each count once;
    // loopback may drop some under pressure, but at least one must land.
    assert!(stats.decode_errors >= 1, "junk not counted: {stats:?}");
    assert!(stats.decode_errors <= 4, "over-counted: {stats:?}");
    assert_eq!(stats.mismatches, 0, "{stats:?}");
}

/// Property fuzz for the wire decoders the batched data path leans on:
/// arbitrary bytes never panic, and a stream of valid frames cut at any
/// byte boundary (a `recvmmsg` datagram edge or a TCP short read) decodes
/// exactly once per frame once the carry is re-spliced.
mod frame_fuzz {
    use nm_common::frame::{decode_request, decode_response, encode_request};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

        /// Total on arbitrary input: decode either consumes a bounded
        /// prefix, reports "partial", or errors — it never panics and
        /// never claims more bytes than it was given.
        #[test]
        fn decode_request_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut keys = Vec::new();
            match decode_request(&bytes, &mut keys) {
                Ok(Some((head, used))) => {
                    prop_assert!(used <= bytes.len());
                    prop_assert_eq!(keys.len(), head.fields);
                }
                Ok(None) => prop_assert!(keys.is_empty()),
                Err(_) => {}
            }
        }

        /// Total on arbitrary response bytes (the client side of the
        /// batched `sendmmsg` path).
        #[test]
        fn decode_response_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = decode_response(&bytes);
        }

        /// Frames survive an arbitrary cut: decode the prefix, carry the
        /// partial tail, splice the remainder — every frame comes back
        /// exactly once, ids/widths/keys intact.
        #[test]
        fn batched_frames_survive_arbitrary_cuts(
            frames in proptest::collection::vec(
                (any::<u64>(), proptest::collection::vec(any::<u64>(), 1..8)),
                1..10,
            ),
            cut_seed in any::<u64>(),
        ) {
            let mut wire = Vec::new();
            for (id, key) in &frames {
                encode_request(&mut wire, *id, key);
            }
            let cut = (cut_seed as usize) % (wire.len() + 1);

            let mut keys = Vec::new();
            let mut heads = Vec::new();
            let mut off = 0usize;
            // First "datagram": everything before the cut.
            while let Some((head, used)) = decode_request(&wire[off..cut], &mut keys).unwrap() {
                heads.push(head);
                off += used;
            }
            // Carry the partial tail into the second read, TCP-style.
            let mut carry = wire[off..cut].to_vec();
            carry.extend_from_slice(&wire[cut..]);
            let mut off2 = 0usize;
            while let Some((head, used)) = decode_request(&carry[off2..], &mut keys).unwrap() {
                heads.push(head);
                off2 += used;
            }
            prop_assert_eq!(off2, carry.len(), "undecoded tail");
            prop_assert_eq!(heads.len(), frames.len());
            for (head, (id, key)) in heads.iter().zip(&frames) {
                prop_assert_eq!(head.id, *id);
                prop_assert_eq!(head.fields, key.len());
            }
            let expect: Vec<u64> =
                frames.iter().flat_map(|(_, k)| k.iter().copied()).collect();
            prop_assert_eq!(keys, expect);
        }
    }
}
