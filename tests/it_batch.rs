//! Batch/scalar equivalence: `classify_batch` must be **bit-identical** to
//! per-key `classify` for every engine in the workspace — the contract the
//! batched pipeline (`nuevomatch::system`) is built on. See
//! `crates/core/src/rqrmi/simd.rs` module docs for why the cross-packet AVX
//! kernels cannot change classification results.

use nm_classbench::{generate, AppKind};
use nm_common::{Classifier, FieldRange, FieldsSpec, LinearSearch, RuleSet};
use nm_cutsplit::CutSplit;
use nm_neurocuts::{NeuroCuts, NeuroCutsConfig};
use nm_trace::{uniform_trace, zipf_trace};
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::FlowCache;
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams};
use proptest::prelude::*;

fn fast_cfg(early_termination: bool) -> NuevoMatchConfig {
    NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 256, max_attempts: 2, ..Default::default() },
        min_iset_coverage: 0.0,
        early_termination,
        ..Default::default()
    }
}

/// Asserts batch == per-key over the trace, in several ragged batch sizes
/// (covering the 8-lane SIMD groups, their tails, and whole-trace calls).
fn assert_batch_equivalent(c: &dyn Classifier, trace: &nm_common::TraceBuf) {
    let stride = trace.stride();
    let raw = trace.raw();
    let n = trace.len();
    let expect: Vec<_> = trace.iter().map(|k| c.classify(k)).collect();
    for batch in [1usize, 5, 8, 32, 127, 128, n] {
        let mut out = vec![None; n];
        let mut lo = 0;
        while lo < n {
            let hi = (lo + batch).min(n);
            c.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out[lo..hi]);
            lo = hi;
        }
        assert_eq!(out, expect, "{} diverged from per-key at batch {batch}", c.name());
    }
}

#[test]
fn every_engine_batch_matches_per_key() {
    for (app, seed) in [(AppKind::Acl, 11u64), (AppKind::Fw, 22), (AppKind::Ipc, 33)] {
        let set = generate(app, 300, seed);
        let trace = uniform_trace(&set, 2_000, seed * 7 + 1);
        let engines: Vec<Box<dyn Classifier>> = vec![
            Box::new(LinearSearch::build(&set)),
            Box::new(TupleMerge::build(&set)),
            Box::new(CutSplit::build(&set)),
            Box::new(NeuroCuts::with_config(
                &set,
                NeuroCutsConfig { iterations: 4, sample: 512, ..Default::default() },
            )),
        ];
        for engine in &engines {
            assert_batch_equivalent(engine.as_ref(), &trace);
        }
    }
}

#[test]
fn nuevomatch_batch_matches_per_key_all_remainders() {
    let set = generate(AppKind::Acl, 400, 5);
    let uni = uniform_trace(&set, 2_000, 99);
    let skew = zipf_trace(&set, 2_000, 1.1, 77);
    for et in [true, false] {
        let cfg = fast_cfg(et);
        let nm_tm = NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap();
        let nm_cs = NuevoMatch::build(&set, &cfg, CutSplit::build).unwrap();
        let nm_ls = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        for trace in [&uni, &skew] {
            assert_batch_equivalent(&nm_tm, trace);
            assert_batch_equivalent(&nm_cs, trace);
            assert_batch_equivalent(&nm_ls, trace);
        }
    }
}

#[test]
fn batch_with_floors_matches_per_key_dispatch() {
    use nm_common::rule::Priority;
    let set = generate(AppKind::Fw, 300, 8);
    let trace = uniform_trace(&set, 1_500, 21);
    let engines: Vec<Box<dyn Classifier>> = vec![
        Box::new(TupleMerge::build(&set)),   // table-major batched override
        Box::new(LinearSearch::build(&set)), // default per-key loop
    ];
    let stride = trace.stride();
    let raw = trace.raw();
    let n = trace.len();
    // Floors cycle through no-floor, permissive, and aggressive pruning.
    let floors: Vec<Priority> = (0..n as u32)
        .map(|i| match i % 4 {
            0 => Priority::MAX,
            1 => 500,
            2 => 10,
            _ => 0,
        })
        .collect();
    for engine in &engines {
        let mut out = vec![None; n];
        engine.classify_batch_with_floors(raw, stride, &floors, &mut out);
        for (i, key) in trace.iter().enumerate() {
            let expect = if floors[i] == Priority::MAX {
                engine.classify(key)
            } else {
                engine.classify_with_floor(key, floors[i])
            };
            assert_eq!(out[i], expect, "{} diverged at packet {i}", engine.name());
        }
    }
}

#[test]
fn flow_cache_batch_matches_per_key() {
    let set = generate(AppKind::Ipc, 250, 3);
    let trace = zipf_trace(&set, 3_000, 1.2, 13);
    let nm = NuevoMatch::build(&set, &fast_cfg(true), TupleMerge::build).unwrap();
    let cached = FlowCache::new(nm, 256);
    // Equivalence must hold across repeated passes (cold cache, then warm).
    assert_batch_equivalent(&cached, &trace);
    assert_batch_equivalent(&cached, &trace);
    assert!(cached.stats().hits > 0, "warm pass should hit the cache");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Property: for arbitrary 2-field rule boxes and arbitrary probe keys,
    /// NuevoMatch's batched path is bit-identical to the per-key path with
    /// early termination both on and off (and both agree with linear scan).
    #[test]
    fn batch_bit_identical_on_arbitrary_boxes(
        boxes in proptest::collection::vec((0u64..60_000, 0u64..8_000, 0u64..60_000, 0u64..8_000), 1..50),
        probes in proptest::collection::vec((0u64..65_536, 0u64..65_536), 64),
    ) {
        let rows: Vec<Vec<FieldRange>> = boxes
            .iter()
            .map(|&(lo0, w0, lo1, w1)| {
                vec![
                    FieldRange::new(lo0, (lo0 + w0).min(65_535)),
                    FieldRange::new(lo1, (lo1 + w1).min(65_535)),
                ]
            })
            .collect();
        let set = RuleSet::from_ranges(FieldsSpec::uniform(2, 16), rows).unwrap();
        let oracle = LinearSearch::build(&set);
        let mut keys = Vec::with_capacity(probes.len() * 2);
        for &(a, b) in &probes {
            keys.push(a);
            keys.push(b);
        }
        for et in [true, false] {
            let nm = NuevoMatch::build(&set, &fast_cfg(et), LinearSearch::build).unwrap();
            let mut out = vec![None; probes.len()];
            nm.classify_batch(&keys, 2, &mut out);
            for (i, &(a, b)) in probes.iter().enumerate() {
                prop_assert_eq!(out[i], nm.classify(&[a, b]), "batch vs per-key, et={}", et);
                prop_assert_eq!(out[i], oracle.classify(&[a, b]), "batch vs oracle, et={}", et);
            }
        }
    }
}
