//! Batch/scalar equivalence: `classify_batch` must be **bit-identical** to
//! per-key `classify` for every engine in the workspace — the contract the
//! batched pipeline (`nuevomatch::system`) is built on. See
//! `crates/core/src/rqrmi/simd.rs` module docs for why the cross-packet AVX
//! kernels (including the divergent-leaf gather kernel) cannot change
//! classification results, and `nm_cutsplit::batched` for the
//! level-synchronous tree-descent invariants checked here.

use nm_classbench::{generate, AppKind};
use nm_common::rule::Priority;
use nm_common::{Classifier, FieldRange, FieldsSpec, LinearSearch, RuleSet};
use nm_cutsplit::CutSplit;
use nm_neurocuts::{NeuroCuts, NeuroCutsConfig};
use nm_nn::Mlp;
use nm_trace::{uniform_trace, zipf_trace};
use nm_tuplemerge::TupleMerge;
use nuevomatch::rqrmi::{train_rqrmi, CompiledRqRmi, Isa, Kernel, LeafSoa};
use nuevomatch::system::FlowCache;
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams};
use proptest::prelude::*;

fn reachable_isas() -> Vec<Isa> {
    [Isa::Scalar, Isa::Sse, Isa::Avx, Isa::AvxFma].into_iter().filter(|i| i.available()).collect()
}

fn fast_cfg(early_termination: bool) -> NuevoMatchConfig {
    NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 256, max_attempts: 2, ..Default::default() },
        min_iset_coverage: 0.0,
        early_termination,
        ..Default::default()
    }
}

/// Asserts batch == per-key over the trace, in several ragged batch sizes
/// (covering the 8-lane SIMD groups, their tails, and whole-trace calls).
fn assert_batch_equivalent(c: &dyn Classifier, trace: &nm_common::TraceBuf) {
    let stride = trace.stride();
    let raw = trace.raw();
    let n = trace.len();
    let expect: Vec<_> = trace.iter().map(|k| c.classify(k)).collect();
    for batch in [1usize, 5, 8, 32, 127, 128, n] {
        let mut out = vec![None; n];
        let mut lo = 0;
        while lo < n {
            let hi = (lo + batch).min(n);
            c.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out[lo..hi]);
            lo = hi;
        }
        assert_eq!(out, expect, "{} diverged from per-key at batch {batch}", c.name());
    }
}

#[test]
fn every_engine_batch_matches_per_key() {
    for (app, seed) in [(AppKind::Acl, 11u64), (AppKind::Fw, 22), (AppKind::Ipc, 33)] {
        let set = generate(app, 300, seed);
        let trace = uniform_trace(&set, 2_000, seed * 7 + 1);
        let engines: Vec<Box<dyn Classifier>> = vec![
            Box::new(LinearSearch::build(&set)),
            Box::new(TupleMerge::build(&set)),
            Box::new(CutSplit::build(&set)),
            Box::new(NeuroCuts::with_config(
                &set,
                NeuroCutsConfig { iterations: 4, sample: 512, ..Default::default() },
            )),
        ];
        for engine in &engines {
            assert_batch_equivalent(engine.as_ref(), &trace);
        }
    }
}

#[test]
fn nuevomatch_batch_matches_per_key_all_remainders() {
    let set = generate(AppKind::Acl, 400, 5);
    let uni = uniform_trace(&set, 2_000, 99);
    let skew = zipf_trace(&set, 2_000, 1.1, 77);
    for et in [true, false] {
        let cfg = fast_cfg(et);
        let nm_tm = NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap();
        let nm_cs = NuevoMatch::build(&set, &cfg, CutSplit::build).unwrap();
        let nm_ls = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        for trace in [&uni, &skew] {
            assert_batch_equivalent(&nm_tm, trace);
            assert_batch_equivalent(&nm_cs, trace);
            assert_batch_equivalent(&nm_ls, trace);
        }
    }
}

#[test]
fn batch_with_floors_matches_per_key_dispatch() {
    let set = generate(AppKind::Fw, 300, 8);
    let trace = uniform_trace(&set, 1_500, 21);
    let engines: Vec<Box<dyn Classifier>> = vec![
        Box::new(TupleMerge::build(&set)), // table-major batched override
        Box::new(CutSplit::build(&set)),   // level-synchronous descent
        Box::new(NeuroCuts::with_config(
            // level-synchronous descent, searched trees
            &set,
            NeuroCutsConfig { iterations: 4, sample: 512, ..Default::default() },
        )),
        // Phase pipeline with caller floors folded into the remainder's
        // batch-wide early termination.
        Box::new(NuevoMatch::build(&set, &fast_cfg(true), TupleMerge::build).unwrap()),
        Box::new(LinearSearch::build(&set)), // default per-key loop
    ];
    let stride = trace.stride();
    let raw = trace.raw();
    let n = trace.len();
    // Floors cycle through no-floor, permissive, and aggressive pruning.
    let floors: Vec<Priority> = (0..n as u32)
        .map(|i| match i % 4 {
            0 => Priority::MAX,
            1 => 500,
            2 => 10,
            _ => 0,
        })
        .collect();
    for engine in &engines {
        let mut out = vec![None; n];
        engine.classify_batch_with_floors(raw, stride, &floors, &mut out);
        for (i, key) in trace.iter().enumerate() {
            let expect = if floors[i] == Priority::MAX {
                engine.classify(key)
            } else {
                engine.classify_with_floor(key, floors[i])
            };
            assert_eq!(out[i], expect, "{} diverged at packet {i}", engine.name());
        }
    }
}

#[test]
fn flow_cache_batch_matches_per_key() {
    let set = generate(AppKind::Ipc, 250, 3);
    let trace = zipf_trace(&set, 3_000, 1.2, 13);
    let nm = NuevoMatch::build(&set, &fast_cfg(true), TupleMerge::build).unwrap();
    let cached = FlowCache::new(nm, 256);
    // Equivalence must hold across repeated passes (cold cache, then warm).
    assert_batch_equivalent(&cached, &trace);
    assert_batch_equivalent(&cached, &trace);
    assert!(cached.stats().hits > 0, "warm pass should hit the cache");
}

/// The leaf stage's two evaluation strategies — per-packet broadcast
/// (scalar `predict`) and the divergent-leaf gather kernel (`predict_batch`
/// on groups whose lanes route to different leaves) — must produce the same
/// *search outcome* for every key on every reachable ISA: same containing
/// range for covered keys, no range for uncovered keys. This is the
/// verdict-level form of "gather ≡ broadcast": predictions may differ in
/// the last ULPs, but both windows contain the truth, so the secondary
/// search cannot diverge.
#[test]
fn gather_and_broadcast_leaf_stage_agree_on_search_outcome() {
    let ranges: Vec<FieldRange> = (0..400u64)
        .map(|i| FieldRange::new(i * 150, i * 150 + 99)) // gaps: uncovered keys exist
        .collect();
    let model = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
    assert!(model.leaf_error_bounds().len() > 1, "need a multi-leaf model for divergence");
    // Emulates `TrainedISet::search_value` over the sorted ranges.
    let search = |pred: usize, err: u32, v: u64| -> Option<usize> {
        let lo = pred.saturating_sub(err as usize);
        let hi = (pred + err as usize).min(ranges.len() - 1);
        let off = ranges[lo..=hi].partition_point(|r| r.hi < v);
        let pos = lo + off;
        (pos <= hi && ranges[pos].lo <= v).then_some(pos)
    };
    // Shuffled covered keys (each 8-group spans distant leaves → gather
    // path) interleaved with uncovered gap keys.
    let keys: Vec<u64> = (0..800usize)
        .map(|i| {
            let r = &ranges[(i * 131) % ranges.len()];
            if i % 3 == 0 {
                r.hi + 25 // in the gap after the range
            } else {
                r.lo + (i as u64 % 100)
            }
        })
        .collect();
    for isa in reachable_isas() {
        let compiled = CompiledRqRmi::with_isa(&model, isa);
        let mut preds = vec![0usize; keys.len()];
        let mut errs = vec![0u32; keys.len()];
        compiled.predict_batch(&keys, &mut preds, &mut errs);
        for (i, &key) in keys.iter().enumerate() {
            let (sp, se) = compiled.predict(key); // broadcast leaf stage
            let batch_outcome = search(preds[i], errs[i], key);
            let scalar_outcome = search(sp, se, key);
            assert_eq!(
                batch_outcome, scalar_outcome,
                "{isa:?} key {key}: gather path found {batch_outcome:?}, \
                 broadcast path found {scalar_outcome:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Property: the divergent-leaf gather kernel agrees with the
    /// per-packet broadcast pass lane by lane, for arbitrary leaf weights,
    /// arbitrary lane→leaf routings and inputs, on every ISA reachable on
    /// this host (the AVX2 gather against its scalar reference included).
    #[test]
    fn gather_kernel_matches_broadcast_per_lane(
        seeds in proptest::collection::vec(0u64..10_000, 2..48),
        lanes in proptest::array::uniform8(0usize..1_000),
        xs_raw in proptest::array::uniform8(0u32..1_000_000),
    ) {
        let leaves: Vec<Kernel> =
            seeds.iter().map(|&s| Kernel::from_mlp(&Mlp::random(8, s))).collect();
        let soa = LeafSoa::from_kernels(&leaves);
        let idx: [usize; 8] = lanes.map(|l| l % leaves.len());
        let xs: [f32; 8] = xs_raw.map(|v| v as f32 / 1_000_000.0);
        for isa in reachable_isas() {
            let gathered = soa.forward_leaf_gather8(&xs, &idx, isa);
            for l in 0..8 {
                let broadcast = leaves[idx[l]].forward_clamped(xs[l], isa);
                prop_assert!(
                    (gathered[l] - broadcast).abs() <= 1e-5,
                    "{:?} lane {} leaf {}: gather {} vs broadcast {}",
                    isa, l, idx[l], gathered[l], broadcast
                );
            }
        }
    }

    /// Property: the level-synchronous batched descent is bit-identical to
    /// the per-key walk for CutSplit and NeuroCuts — arbitrary 2-field rule
    /// boxes, arbitrary probes, batch sizes 1/8/32/128, with and without
    /// per-key floors.
    #[test]
    fn tree_engines_batched_descent_bit_identical(
        boxes in proptest::collection::vec(
            (0u64..60_000, 0u64..8_000, 0u64..60_000, 0u64..8_000), 1..60),
        probes in proptest::collection::vec((0u64..65_536, 0u64..65_536), 128),
        floor_sel in proptest::collection::vec(0u8..4, 128),
    ) {
        let rows: Vec<Vec<FieldRange>> = boxes
            .iter()
            .map(|&(lo0, w0, lo1, w1)| {
                vec![
                    FieldRange::new(lo0, (lo0 + w0).min(65_535)),
                    FieldRange::new(lo1, (lo1 + w1).min(65_535)),
                ]
            })
            .collect();
        let set = RuleSet::from_ranges(FieldsSpec::uniform(2, 16), rows).unwrap();
        let mut keys = Vec::with_capacity(probes.len() * 2);
        for &(a, b) in &probes {
            keys.push(a);
            keys.push(b);
        }
        let floors: Vec<Priority> = floor_sel
            .iter()
            .map(|&s| match s {
                0 => Priority::MAX,
                1 => 40,
                2 => 5,
                _ => 0,
            })
            .collect();
        let engines: Vec<Box<dyn Classifier>> = vec![
            Box::new(CutSplit::build(&set)),
            Box::new(NeuroCuts::with_config(
                &set,
                NeuroCutsConfig { iterations: 2, sample: 64, ..Default::default() },
            )),
        ];
        for engine in &engines {
            for batch in [1usize, 8, 32, 128] {
                let mut out = vec![None; probes.len()];
                let mut lo = 0;
                while lo < probes.len() {
                    let hi = (lo + batch).min(probes.len());
                    engine.classify_batch(&keys[lo * 2..hi * 2], 2, &mut out[lo..hi]);
                    lo = hi;
                }
                for (i, &(a, b)) in probes.iter().enumerate() {
                    prop_assert_eq!(
                        out[i],
                        engine.classify(&[a, b]),
                        "{} batch={} probe {}",
                        engine.name(), batch, i
                    );
                }
                // Floored form against the per-key dispatch.
                let mut out_f = vec![None; probes.len()];
                engine.classify_batch_with_floors(&keys, 2, &floors, &mut out_f);
                for (i, &(a, b)) in probes.iter().enumerate() {
                    let expect = if floors[i] == Priority::MAX {
                        engine.classify(&[a, b])
                    } else {
                        engine.classify_with_floor(&[a, b], floors[i])
                    };
                    prop_assert_eq!(
                        out_f[i], expect,
                        "{} floored probe {}", engine.name(), i
                    );
                }
            }
        }
    }

    /// Property: for arbitrary 2-field rule boxes and arbitrary probe keys,
    /// NuevoMatch's batched path is bit-identical to the per-key path with
    /// early termination both on and off (and both agree with linear scan).
    #[test]
    fn batch_bit_identical_on_arbitrary_boxes(
        boxes in proptest::collection::vec((0u64..60_000, 0u64..8_000, 0u64..60_000, 0u64..8_000), 1..50),
        probes in proptest::collection::vec((0u64..65_536, 0u64..65_536), 64),
    ) {
        let rows: Vec<Vec<FieldRange>> = boxes
            .iter()
            .map(|&(lo0, w0, lo1, w1)| {
                vec![
                    FieldRange::new(lo0, (lo0 + w0).min(65_535)),
                    FieldRange::new(lo1, (lo1 + w1).min(65_535)),
                ]
            })
            .collect();
        let set = RuleSet::from_ranges(FieldsSpec::uniform(2, 16), rows).unwrap();
        let oracle = LinearSearch::build(&set);
        let mut keys = Vec::with_capacity(probes.len() * 2);
        for &(a, b) in &probes {
            keys.push(a);
            keys.push(b);
        }
        for et in [true, false] {
            let nm = NuevoMatch::build(&set, &fast_cfg(et), LinearSearch::build).unwrap();
            let mut out = vec![None; probes.len()];
            nm.classify_batch(&keys, 2, &mut out);
            for (i, &(a, b)) in probes.iter().enumerate() {
                prop_assert_eq!(out[i], nm.classify(&[a, b]), "batch vs per-key, et={}", et);
                prop_assert_eq!(out[i], oracle.classify(&[a, b]), "batch vs oracle, et={}", et);
            }
        }
    }
}
