//! nm-integration: all content lives in the [[test]] targets.
