//! Concurrent soak test for the control-plane/data-plane split: reader
//! threads classify continuously against `ClassifierHandle` snapshots while
//! a writer thread applies proptest-generated `UpdateBatch` scripts and
//! periodically retrains.
//!
//! The correctness bar is generation-exact: every classification a reader
//! performs must equal a `LinearSearch` oracle rebuilt from the rule truth
//! *at the reader's pinned generation* — not the latest truth. Zero
//! mismatches across the whole run also demonstrates the liveness property
//! the redesign exists for: readers keep classifying (and keep being right)
//! straight through update publishes and retrain swaps, never blocking on
//! either.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

use nm_common::{
    Classifier, FieldsSpec, FiveTuple, LinearSearch, Rule, RuleSet, SplitMix64, UpdateBatch,
};
use nm_tuplemerge::TupleMerge;
use nuevomatch::{ClassifierHandle, NuevoMatchConfig, RqRmiParams};
use proptest::prelude::*;

const N_RULES: u16 = 400;
const READERS: usize = 2;
const KEYS_PER_CHECK: usize = 64;

fn base_set() -> RuleSet {
    let rules: Vec<_> = (0..N_RULES)
        .map(|i| {
            FiveTuple::new().dst_port_range(i * 150, i * 150 + 120).into_rule(i as u32, i as u32)
        })
        .collect();
    RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
}

fn cfg() -> NuevoMatchConfig {
    NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
        ..Default::default()
    }
}

/// Rule-truth history keyed by published generation. The writer records the
/// post-batch truth for every generation it publishes; readers resolve their
/// pinned generation to the truth that produced it.
type History = Mutex<HashMap<u64, Arc<Vec<Rule>>>>;

/// One scripted control-plane op: `(kind, x, y)` decodes to remove / insert
/// / modify with pseudo-random-but-deterministic targets.
fn decode_op(truth: &mut Vec<Rule>, next_id: &mut u32, kind: u64, x: u64, y: u64) -> UpdateBatch {
    match kind {
        0 => {
            // Remove an id that may or may not exist (misses must be safe).
            let id = (x % (N_RULES as u64 + 40)) as u32;
            truth.retain(|r| r.id != id);
            UpdateBatch::new().remove(id)
        }
        1 => {
            let id = *next_id;
            *next_id += 1;
            let port = (x * 131 + y) % 65_000;
            let rule = FiveTuple::new()
                .dst_port_range(port as u16, (port as u16).saturating_add(90))
                .into_rule(id, id);
            truth.push(rule.clone());
            UpdateBatch::new().insert(rule)
        }
        _ => {
            let id = (x % N_RULES as u64) as u32;
            let port = (y * 137) % 64_000;
            let rule = FiveTuple::new()
                .dst_port_range(port as u16, (port as u16).saturating_add(70))
                .into_rule(id, id);
            truth.retain(|r| r.id != id);
            truth.push(rule.clone());
            UpdateBatch::new().modify(rule)
        }
    }
}

/// Pins a snapshot AND the truth that generated it. A reader may observe a
/// generation a beat before the writer records its truth; re-pinning until
/// the entry exists keeps the pairing exact without ever blocking the
/// writer.
fn pin_with_truth(
    handle: &ClassifierHandle<TupleMerge>,
    history: &History,
) -> (Arc<nuevomatch::NmSnapshot<TupleMerge>>, Arc<Vec<Rule>>) {
    loop {
        let snap = handle.snapshot();
        if let Some(rules) = history.lock().unwrap().get(&snap.generation()).cloned() {
            return (snap, rules);
        }
        std::thread::yield_now();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// The satellite acceptance test: concurrent updater + readers, every
    /// batched classification checked against the pinned-generation oracle.
    #[test]
    fn concurrent_soak_matches_pinned_generation_oracle(
        script in proptest::collection::vec((0u64..3, 0u64..65_536, 0u64..65_536), 30..60),
        key_seed in 1u64..1_000_000,
    ) {
        let set = base_set();
        let handle = ClassifierHandle::new(&set, &cfg(), TupleMerge::build).unwrap();
        let history: History = Mutex::new(HashMap::new());
        history
            .lock()
            .unwrap()
            .insert(handle.generation(), Arc::new(set.rules().to_vec()));

        let stop = AtomicBool::new(false);
        let checks = AtomicU64::new(0);
        std::thread::scope(|scope| {
            // Readers: pin, oracle at the pinned generation, batched
            // classification, compare per key.
            let mut joins = Vec::new();
            for reader in 0..READERS {
                let handle = handle.clone();
                let history = &history;
                let stop = &stop;
                let checks = &checks;
                joins.push(scope.spawn(move || {
                    let mut rng = SplitMix64::new(key_seed + reader as u64 * 7_919);
                    let mut keys = vec![0u64; KEYS_PER_CHECK * 5];
                    let mut out = vec![None; KEYS_PER_CHECK];
                    while !stop.load(SeqCst) {
                        let (snap, truth) = pin_with_truth(&handle, history);
                        let oracle = LinearSearch::from_rules((*truth).clone());
                        for k in keys.iter_mut() {
                            *k = rng.below(66_000);
                        }
                        // Keys are 5-tuples; zero the non-port fields so the
                        // port-range rules above decide everything.
                        for i in 0..KEYS_PER_CHECK {
                            keys[i * 5] = 0;
                            keys[i * 5 + 1] = 0;
                            keys[i * 5 + 4] = 0;
                        }
                        snap.classify_batch(&keys, 5, &mut out);
                        for i in 0..KEYS_PER_CHECK {
                            let key = &keys[i * 5..(i + 1) * 5];
                            let want = oracle.classify(key);
                            assert_eq!(
                                out[i],
                                want,
                                "reader {reader} diverged from generation-{} oracle on {key:?}",
                                snap.generation()
                            );
                        }
                        checks.fetch_add(KEYS_PER_CHECK as u64, SeqCst);
                    }
                }));
            }

            // Writer: apply the script, retraining every ~15 ops. The truth
            // entry for each published generation is recorded before readers
            // can resolve it (they spin on the history map, not on a lock
            // the writer holds during classification).
            let mut truth = set.rules().to_vec();
            let mut next_id = N_RULES as u32 + 1_000;
            for (i, &(kind, x, y)) in script.iter().enumerate() {
                let batch = decode_op(&mut truth, &mut next_id, kind, x, y);
                handle.apply(&batch);
                history
                    .lock()
                    .unwrap()
                    .insert(handle.generation(), Arc::new(truth.clone()));
                if i % 15 == 14 {
                    // Synchronous retrain: same truth, new generation. The
                    // readers keep running right through the swap.
                    handle.retrain().unwrap();
                    history
                        .lock()
                        .unwrap()
                        .insert(handle.generation(), Arc::new(truth.clone()));
                }
            }
            // Let the readers chew on the final state briefly, then stop.
            std::thread::sleep(std::time::Duration::from_millis(30));
            stop.store(true, SeqCst);
            for j in joins {
                j.join().expect("reader panicked");
            }
        });

        prop_assert!(checks.load(SeqCst) > 0, "readers never got to classify");
        prop_assert!(handle.retrains_completed() >= 1, "script too short to retrain");
        // Final agreement: the handle equals a fresh oracle over the final
        // truth at every port.
        let truth = handle.snapshot();
        let final_rules: Vec<Rule> = {
            let h = history.lock().unwrap();
            (**h.get(&truth.generation()).unwrap()).clone()
        };
        let oracle = LinearSearch::from_rules(final_rules);
        for port in (0u64..66_000).step_by(61) {
            let key = [0, 0, 0, port, 0];
            prop_assert_eq!(truth.classify(&key), oracle.classify(&key), "port {}", port);
        }
    }
}

/// Readers must keep making progress *during* a retrain — the lock-free
/// acceptance criterion, measured rather than assumed.
#[test]
fn readers_progress_while_retrain_runs() {
    let set = base_set();
    let handle = ClassifierHandle::new(&set, &cfg(), TupleMerge::build).unwrap();
    // Drift some rules so the retrain has real work.
    for i in 0..80u32 {
        handle.apply(&UpdateBatch::new().modify(
            FiveTuple::new().dst_port_range((i * 97) as u16, (i * 97 + 50) as u16).into_rule(i, i),
        ));
    }
    let during = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let join = handle.spawn_retrain();
        let handle2 = handle.clone();
        let during = &during;
        let reader = scope.spawn(move || {
            let key = [0u64, 0, 0, 1_234, 0];
            // Classify as long as the retrain is in flight (or until it was
            // too fast to observe at all).
            loop {
                let _ = handle2.classify(&key);
                during.fetch_add(1, SeqCst);
                if !handle2.retrain_in_progress() {
                    break;
                }
            }
        });
        join.join().unwrap().unwrap();
        reader.join().unwrap();
    });
    assert!(during.load(SeqCst) > 0, "reader made no progress during retrain");
    assert_eq!(handle.retrains_completed(), 1);
}
