//! Partial-retrain equivalence property: after an arbitrary stream of
//! update batches, an incremental (leaf-level) retrain must yield verdicts
//! **bit-identical** to a full rebuild from `live_rules()` — across every
//! updatable remainder engine and every classify entry point (per-key and
//! batched at several sizes).
//!
//! This is the invariant that makes the partial path safe to substitute for
//! the full rebuild in `ClassifierHandle::retrain`: both serve the same
//! rule multiset and resolve matches by `(priority, id)`, so no reader can
//! distinguish which retrain flavour published its snapshot.

use nm_common::update::BatchUpdatable;
use nm_common::{
    Classifier, FieldsSpec, FiveTuple, LinearSearch, MatchResult, RuleSet, UpdateBatch,
};
use nm_tuplemerge::TupleMerge;
use nuevomatch::{NuevoMatch, NuevoMatchConfig, PartialRetrainPolicy, RqRmiParams};
use proptest::prelude::*;

const N_RULES: u16 = 250;

fn base_set() -> RuleSet {
    let rules: Vec<_> = (0..N_RULES)
        .map(|i| {
            FiveTuple::new().dst_port_range(i * 150, i * 150 + 110).into_rule(i as u32, i as u32)
        })
        .collect();
    RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
}

fn cfg() -> NuevoMatchConfig {
    NuevoMatchConfig {
        rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
        // Force the partial path: the property must hold whenever the
        // structural preconditions are met, not only when the policy
        // heuristics would have chosen it.
        partial_retrain: PartialRetrainPolicy::always(),
        ..Default::default()
    }
}

/// Decodes one scripted op. Priorities equal ids (unique), so verdicts are
/// engine-independent and "bit-identical" is well-defined.
fn decode_op(next_id: &mut u32, kind: u64, x: u64, y: u64) -> UpdateBatch {
    match kind {
        0 => UpdateBatch::new().remove((x % (N_RULES as u64 + 60)) as u32),
        1 => {
            let id = *next_id;
            *next_id += 1;
            let port = (x * 131 + y) % 64_000;
            UpdateBatch::new().insert(
                FiveTuple::new()
                    .dst_port_range(port as u16, (port as u16).saturating_add(80))
                    .into_rule(id, id),
            )
        }
        2 => {
            // Re-insert an existing rule with its box unchanged: the §3.9
            // matching-set change the paper's Figure 7 drifts on, and the
            // case partial retrains re-admit wholesale.
            let i = (x % N_RULES as u64) as u16;
            UpdateBatch::new().modify(
                FiveTuple::new()
                    .dst_port_range(i * 150, i * 150 + 110)
                    .into_rule(i as u32, i as u32),
            )
        }
        _ => {
            let id = (x % N_RULES as u64) as u32;
            let port = (y * 137) % 63_000;
            UpdateBatch::new().modify(
                FiveTuple::new()
                    .dst_port_range(port as u16, (port as u16).saturating_add(60))
                    .into_rule(id, id),
            )
        }
    }
}

/// Applies `script`, partial-retrains, and checks verdict equivalence
/// against a full rebuild from `live_rules()` for one remainder engine.
fn check_engine<R, B>(script: &[(u64, u64, u64)], build: B, engine: &str)
where
    R: BatchUpdatable + Clone,
    B: Fn(&RuleSet) -> R + Copy + Send + Sync,
{
    let set = base_set();
    let c = cfg();
    let mut nm = NuevoMatch::build(&set, &c, build).unwrap();
    let mut next_id = N_RULES as u32 + 500;
    for &(kind, x, y) in script {
        nm.apply(&decode_op(&mut next_id, kind, x, y));
    }

    let (partial, _report) =
        nm.partial_retrain(&c).unwrap_or_else(|e| panic!("{engine}: partial retrain failed: {e}"));
    let mut live = nm.live_rules();
    live.sort_by_key(|r| (r.priority, r.id));
    let full =
        NuevoMatch::build(&RuleSet::new(set.spec().clone(), live.clone()).unwrap(), &c, build)
            .unwrap();
    assert_eq!(partial.num_rules(), full.num_rules(), "{engine}: rule counts diverge");

    // Probe keys: uniform port sweep plus every live rule's boundaries.
    let mut keys: Vec<u64> = Vec::new();
    for port in (0u64..66_000).step_by(151) {
        keys.extend_from_slice(&[0, 0, 0, port, 0]);
    }
    for r in &live {
        keys.extend_from_slice(&[0, 0, 0, r.fields[nm_common::DST_PORT].lo, 0]);
        keys.extend_from_slice(&[0, 0, 0, r.fields[nm_common::DST_PORT].hi, 0]);
    }
    let n = keys.len() / 5;

    // Per-key and batched at several sizes: all bit-identical.
    for i in 0..n {
        let key = &keys[i * 5..(i + 1) * 5];
        assert_eq!(partial.classify(key), full.classify(key), "{engine}: key {key:?}");
    }
    for batch in [1usize, 8, 128] {
        let mut out_p: Vec<Option<MatchResult>> = vec![None; n];
        let mut out_f: Vec<Option<MatchResult>> = vec![None; n];
        let mut lo = 0;
        while lo < n {
            let hi = (lo + batch).min(n);
            partial.classify_batch(&keys[lo * 5..hi * 5], 5, &mut out_p[lo..hi]);
            full.classify_batch(&keys[lo * 5..hi * 5], 5, &mut out_f[lo..hi]);
            lo = hi;
        }
        assert_eq!(out_p, out_f, "{engine}: batch size {batch} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The satellite acceptance property: random update batches, then a
    /// partial retrain, compared bit-identically against a full rebuild —
    /// for every updatable engine and several batch sizes.
    #[test]
    fn partial_retrain_equals_full_rebuild(
        script in proptest::collection::vec((0u64..4, 0u64..65_536, 0u64..65_536), 5..40),
    ) {
        check_engine(&script, LinearSearch::build, "linear");
        check_engine(&script, TupleMerge::build, "tm");
    }
}

/// Deterministic worst-case shapes the random script may miss.
#[test]
fn partial_retrain_edge_shapes() {
    // Everything drifts (every rule re-inserted unchanged): partial must
    // re-admit the lot and end with an empty remainder.
    let set = base_set();
    let c = cfg();
    let mut nm = NuevoMatch::build(&set, &c, LinearSearch::build).unwrap();
    let mut batch = UpdateBatch::new();
    for i in 0..N_RULES {
        batch = batch.modify(
            FiveTuple::new().dst_port_range(i * 150, i * 150 + 110).into_rule(i as u32, i as u32),
        );
    }
    nm.apply(&batch);
    let (fresh, report) = nm.partial_retrain(&c).unwrap();
    assert_eq!(report.readmitted, N_RULES as usize);
    assert_eq!(fresh.remainder().num_rules(), 0);
    let oracle = LinearSearch::from_rules(nm.live_rules());
    for port in (0u64..40_000).step_by(29) {
        let key = [0, 0, 0, port, 0];
        assert_eq!(fresh.classify(&key), oracle.classify(&key), "port {port}");
    }

    // Everything deleted except one rule: iSet compaction to a single range.
    let mut nm = NuevoMatch::build(&set, &c, LinearSearch::build).unwrap();
    let mut batch = UpdateBatch::new();
    for i in 1..N_RULES {
        batch = batch.remove(i as u32);
    }
    nm.apply(&batch);
    let (fresh, _) = nm.partial_retrain(&c).unwrap();
    assert_eq!(fresh.num_rules(), 1);
    assert_eq!(fresh.classify(&[0, 0, 0, 50, 0]).unwrap().rule, 0);
    assert_eq!(fresh.classify(&[0, 0, 0, 200, 0]), None);
}
