//! Wire-to-verdict serving over loopback: start an `nm-serve` front-end on
//! ephemeral ports, classify through real UDP and TCP sockets with deadline
//! micro-batching, apply an update batch mid-flight, and read the
//! tail-latency accounting off the server on shutdown.
//!
//! ```sh
//! cargo run -p nm-bench --release --example serve_loopback
//! ```

use std::time::{Duration, Instant};

use nm_classbench::{generate, AppKind};
use nm_common::{FiveTuple, LinearSearch, SplitMix64, UpdateBatch};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::{ClassifierHandle, NuevoMatchConfig, ServeClient, ServeConfig, Server, Transport};

fn main() {
    let n = 10_000usize;
    let set = generate(AppKind::Acl, n, 11);
    let handle = ClassifierHandle::new(&set, &NuevoMatchConfig::default(), TupleMerge::build)
        .expect("build");

    // Ephemeral ports ("127.0.0.1:0") make this runnable anywhere; a real
    // deployment would pass a fixed listen address via `nmctl serve`.
    let scfg = ServeConfig {
        transport: Transport::Both,
        max_batch: 64,
        deadline: Duration::from_micros(20),
        stride: set.num_fields(),
        ..ServeConfig::default()
    };
    let server = Server::start(handle.clone(), &scfg).expect("bind");
    let udp_addr = server.udp_addr().expect("udp");
    let tcp_addr = server.tcp_addr().expect("tcp");
    println!("serving {n} rules on udp://{udp_addr} and tcp://{tcp_addr}");

    // In debug builds the in-loop validator replays sampled verdicts
    // against a pinned-generation oracle; publish the truth it needs.
    server.oracle().publish(handle.generation(), LinearSearch::from_rules(set.rules().to_vec()));

    // A few round trips on each transport, with keys drawn from the rules
    // so the verdicts are non-trivial.
    let trace = uniform_trace(&set, 64, 12);
    let stride = trace.stride();
    let key = |i: u64| &trace.raw()[(i as usize % trace.len()) * stride..][..stride];
    let mut rng = SplitMix64::new(7);
    let mut udp = ServeClient::udp(udp_addr).expect("udp client");
    let mut tcp = ServeClient::tcp(tcp_addr).expect("tcp client");
    for i in 0..3u64 {
        let k = key(i);
        let t0 = Instant::now();
        let frame = udp.call(i, k, Duration::from_secs(1)).expect("udp call");
        println!(
            "udp  id={i} verdict={:?} generation={} rtt={:?}",
            frame.verdict.map(|m| m.priority),
            frame.generation,
            t0.elapsed()
        );
    }
    for i in 10..13u64 {
        let k = key(i);
        let frame = tcp.call(i, k, Duration::from_secs(1)).expect("tcp call");
        println!(
            "tcp  id={i} verdict={:?} generation={}",
            frame.verdict.map(|m| m.priority),
            frame.generation
        );
    }

    // Update mid-flight: responses after this carry the new generation,
    // and each served batch pins exactly one of the two snapshots.
    let mut batch = UpdateBatch::new();
    for id in 0..32u32 {
        let lo = rng.below(60_000) as u16;
        batch = batch.modify(FiveTuple::new().dst_port_range(lo, lo + 100).into_rule(id, id));
    }
    handle.apply(&batch);
    println!("applied 32-op update batch -> generation {}", handle.generation());
    let frame = udp.call(99, key(99), Duration::from_secs(1)).expect("udp call");
    println!("udp  id=99 served at generation {}", frame.generation);

    let stats = server.shutdown();
    let lat = stats.latency.summary_us();
    println!(
        "drained: {} responses in {} batches ({} full / {} deadline / {} drain), \
         p50 {:.1}us p99 {:.1}us",
        stats.responses,
        stats.batches,
        stats.full_flushes,
        stats.deadline_flushes,
        stats.drain_flushes,
        lat.p50_us,
        lat.p99_us,
    );
}
