//! Online rule updates (§3.9) through the control-plane/data-plane split:
//! a `ClassifierHandle` serves lock-free readers while `UpdateBatch`
//! transactions drift rules to the remainder and a background retrain swaps
//! in a fresh model — the Figure 7 lifecycle, live.
//!
//! ```sh
//! cargo run -p nm-bench --release --example online_updates
//! ```

use nm_analysis::{throughput_over_time, UpdateModel};
use nm_classbench::{generate, AppKind};
use nm_common::{Classifier, FiveTuple, SplitMix64, UpdateBatch};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_sequential;
use nuevomatch::{ClassifierHandle, NuevoMatchConfig};

fn main() {
    let n = 10_000usize;
    let set = generate(AppKind::Acl, n, 11);
    let trace = uniform_trace(&set, 50_000, 12);
    // The builder value (`TupleMerge::build`) is retained by the handle:
    // every background retrain re-invokes it on the then-current rules.
    let handle = ClassifierHandle::new(&set, &NuevoMatchConfig::default(), TupleMerge::build)
        .expect("build");
    let fresh = handle.snapshot();
    let fresh_pps = run_sequential(&*fresh, &trace).pps;
    println!(
        "built: {} rules, {:.1}% iSet coverage, remainder {} rules, {:.2e} pps, generation {}",
        n,
        fresh.engine().coverage() * 100.0,
        fresh.engine().remainder().num_rules(),
        fresh_pps,
        fresh.generation(),
    );

    // Apply a mixed update stream as *transactions*: each batch becomes
    // visible atomically, and every matching-set change lands in the
    // remainder (there is no known way to edit a trained RQ-RMI in place).
    // Readers pinned to older generations are untouched throughout.
    let mut rng = SplitMix64::new(99);
    let mut report = nm_common::UpdateReport::default();
    let mut ops_applied = 0usize;
    for chunk in 0..(n / 10 / 16) as u32 {
        let mut batch = UpdateBatch::new();
        for i in 0..16u32 {
            match rng.below(3) {
                0 => {
                    batch = batch.remove(rng.below(n as u64) as u32);
                }
                1 => {
                    let id = rng.below(n as u64) as u32;
                    let lo = rng.below(60_000) as u16;
                    batch = batch
                        .modify(FiveTuple::new().dst_port_range(lo, lo + 100).into_rule(id, id));
                }
                _ => {
                    let id = n as u32 + chunk * 16 + i;
                    batch = batch.insert(
                        FiveTuple::new().dst_port_exact(rng.below(65_536) as u16).into_rule(id, id),
                    );
                }
            }
        }
        ops_applied += batch.len();
        report.absorb(handle.apply(&batch));
    }
    let drifted = handle.snapshot();
    let drifted_pps = run_sequential(&*drifted, &trace).pps;
    println!(
        "after {} applied ops (+{} inserted, ~{} replaced, -{} removed, {} missing): \
         remainder fraction {:.1}%, generation {}, {:.2e} pps ({:.0}% of fresh)",
        ops_applied,
        report.inserted,
        report.replaced,
        report.removed,
        report.missing,
        drifted.engine().remainder_fraction() * 100.0,
        drifted.generation(),
        drifted_pps,
        100.0 * drifted_pps / fresh_pps
    );
    // The pre-update snapshot is still pinned and still serves its
    // generation — that is the RCU guarantee readers rely on.
    assert!(
        fresh.engine().remainder_fraction() < drifted.engine().remainder_fraction(),
        "the pinned snapshot must not see the drift applied after it was taken"
    );
    println!(
        "pinned generation {} still serves unchanged while generation {} is live",
        fresh.generation(),
        drifted.generation()
    );

    // The retrain: rebuilds from the current truth on this thread's clock,
    // publishes atomically, resets the drift.
    let t0 = std::time::Instant::now();
    let gen = handle.retrain().expect("retrain");
    let retrained = handle.snapshot();
    println!(
        "\nretrain published generation {gen} in {:.2}s: remainder fraction {:.1}% -> {:.1}%",
        t0.elapsed().as_secs_f64(),
        drifted.engine().remainder_fraction() * 100.0,
        retrained.engine().remainder_fraction() * 100.0,
    );
    let retrained_pps = run_sequential(&*retrained, &trace).pps;
    println!(
        "after retrain: {:.2e} pps ({:.0}% of fresh — the random port-range modifies \
         genuinely degrade the rule-set's iSet structure; pure-drift recovery is \
         measured in update_bench)",
        retrained_pps,
        100.0 * retrained_pps / fresh_pps
    );

    // The Figure 7 model for this set, parameterised by what we measured.
    println!("\nFigure 7 model for this set (normalized throughput over 10 minutes):");
    let m = UpdateModel {
        rules: n as f64,
        update_rate: 100.0,
        retrain_period: 120.0,
        train_time: t0.elapsed().as_secs_f64(),
        fresh_throughput: 1.0,
        remainder_throughput: drifted_pps / fresh_pps,
    };
    for (t, y) in throughput_over_time(&m, 600.0, 11) {
        let bars = "#".repeat((y * 40.0) as usize);
        println!("  t={t:>4.0}s {bars} {y:.2}");
    }
    println!(
        "\nThe *measured* curve (concurrent readers, paced updates, background \
         retrains) lives in `cargo run -p nm-bench --release --bin update_bench`; \
         the analytic sweep stays in `--bin fig7`."
    );
}
