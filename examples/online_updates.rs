//! Online rule updates (§3.9): deletions, insertions and matching-set
//! changes against a live NuevoMatch classifier with a TupleMerge
//! remainder, plus the remainder-drift / rebuild cycle.
//!
//! ```sh
//! cargo run -p nm-examples --release --bin online_updates
//! ```

use nm_analysis::{throughput_over_time, UpdateModel};
use nm_classbench::{generate, AppKind};
use nm_common::{Classifier, FiveTuple, SplitMix64};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_sequential;
use nuevomatch::{NuevoMatch, NuevoMatchConfig};

fn main() {
    let n = 10_000usize;
    let set = generate(AppKind::Acl, n, 11);
    let trace = uniform_trace(&set, 50_000, 12);
    let mut nm =
        NuevoMatch::build(&set, &NuevoMatchConfig::default(), TupleMerge::build).expect("build");
    let fresh_pps = run_sequential(&nm, &trace).pps;
    println!(
        "built: {} rules, {:.1}% iSet coverage, remainder {} rules, {:.2e} pps",
        n,
        nm.coverage() * 100.0,
        nm.remainder().num_rules(),
        fresh_pps
    );

    // Apply a mixed update stream: every update that changes a matching set
    // lands in the remainder (there is no known way to edit a trained
    // RQ-RMI in place).
    let mut rng = SplitMix64::new(99);
    let mut deleted = 0usize;
    for i in 0..(n / 10) as u32 {
        match rng.below(3) {
            0 => {
                // Rule deletion: tombstone in the owning iSet.
                let id = rng.below(n as u64) as u32;
                deleted += nm.remove(id) as usize;
            }
            1 => {
                // Matching-set change: remove + reinsert via the remainder.
                let id = rng.below(n as u64) as u32;
                let lo = rng.below(60_000) as u16;
                nm.modify(FiveTuple::new().dst_port_range(lo, lo + 100).into_rule(id, id));
            }
            _ => {
                // Brand-new rule.
                let id = n as u32 + i;
                nm.insert(
                    FiveTuple::new().dst_port_exact(rng.below(65_536) as u16).into_rule(id, id),
                );
            }
        }
    }
    let drifted_pps = run_sequential(&nm, &trace).pps;
    println!(
        "after {} updates: remainder fraction {:.1}% (moved {}), deleted {}, {:.2e} pps ({:.0}% of fresh)",
        n / 10,
        nm.remainder_fraction() * 100.0,
        nm.moved_to_remainder(),
        deleted,
        drifted_pps,
        100.0 * drifted_pps / fresh_pps
    );

    // Rebuild ("retrain") — the operator's periodic reset.
    println!("\nFigure 7 model for this set (normalized throughput over 10 minutes):");
    let m = UpdateModel {
        rules: n as f64,
        update_rate: 100.0,
        retrain_period: 120.0,
        train_time: 10.0,
        fresh_throughput: 1.0,
        remainder_throughput: drifted_pps / fresh_pps,
    };
    for (t, y) in throughput_over_time(&m, 600.0, 11) {
        let bars = "#".repeat((y * 40.0) as usize);
        println!("  t={t:>4.0}s {bars} {y:.2}");
    }
    println!(
        "\nThe sustained-rate estimate and the full sweep live in \
         `cargo run -p nm-bench --release --bin fig7`."
    );
}
