//! The NUMA-aware sharded worker runtime: partition a rule-set along one
//! field, serve each shard from its own NuevoMatch replica behind a
//! [`ShardedHandle`], steer packets per batch, and merge per-shard verdicts
//! by priority — checksum-equivalent to one whole-set engine, but built to
//! scale past a socket (per-shard working sets, per-worker flow caches,
//! workers pinned to their shard's NUMA node).
//!
//! Also shows the control plane: one `UpdateBatch` fans out across the
//! shard replicas and publishes a single logical generation, so readers can
//! never observe half a transaction.
//!
//! ```sh
//! cargo run -p nm-bench --release --example sharded_runtime
//! ```

use nm_classbench::{generate, AppKind};
use nm_common::{FiveTuple, ShardPlanConfig, ShardStrategy, UpdateBatch};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_sequential;
use nuevomatch::{NuevoMatchConfig, Runtime, RuntimeConfig, ShardedHandle, Topology};

fn main() {
    let set = generate(AppKind::Acl, 10_000, 21);
    let trace = uniform_trace(&set, 100_000, 22);

    // Partition: 2 home shards, steering field auto-picked to minimise the
    // broadcast shard (wildcard-heavy rules every packet must consult).
    let plan = ShardPlanConfig { shards: 2, dim: None, strategy: ShardStrategy::Range };
    let sharded = ShardedHandle::new(&set, &NuevoMatchConfig::default(), &plan, TupleMerge::build)
        .expect("sharded build");
    println!(
        "plan: {} shards over field {} ({:.1}% broadcast), logical generation {}",
        sharded.plan().shards(),
        set.spec().field(sharded.plan().dim()).name,
        sharded.plan().broadcast_fraction() * 100.0,
        sharded.generation(),
    );

    // The runtime discovers the machine shape; on a 1-CPU box it degrades
    // to unpinned scheduling (structure identical, numbers time-share).
    let topo = Topology::discover();
    println!("topology: {} NUMA node(s), {} CPU(s)", topo.nodes().len(), topo.num_cpus());
    let rt = Runtime::new(RuntimeConfig { workers_per_shard: 2, ..Default::default() });

    // Verdict equivalence is the contract: the sharded grid's checksum
    // equals a sequential whole-set pass over the very same handle.
    let seq = run_sequential(&sharded, &trace);
    let stats = rt.run(&sharded, &trace).expect("sharded run");
    assert_eq!(stats.checksum, seq.checksum, "sharded ≠ sequential");
    println!(
        "run: {:.2e} pps over {} workers ({} pinned), steered {:?}, checksum OK",
        stats.pps, stats.workers, stats.pinned_workers, stats.steered,
    );

    // Control plane: one transaction fans across the shards — a modify that
    // moves a rule into another shard's steering range lands as a remove on
    // the old shard and an insert on the new one, under ONE new generation.
    let g0 = sharded.generation();
    let report = sharded.apply(
        &UpdateBatch::new()
            .modify(FiveTuple::new().dst_port_range(64_000, 64_100).into_rule(17, 17))
            .insert(FiveTuple::new().dst_port_exact(64_050).into_rule(900_000, 900_000))
            .remove(23),
    );
    println!(
        "update fan-out: +{} -{} ~{} → generation {} (was {})",
        report.inserted,
        report.removed,
        report.replaced,
        sharded.generation(),
        g0,
    );

    // Retrains fan the same way: every shard folds its drift back into
    // fresh models, then one epoch publishes them together.
    let g = sharded.retrain().expect("sharded retrain");
    let stats = rt.run(&sharded, &trace).expect("post-retrain run");
    let seq = run_sequential(&sharded, &trace);
    assert_eq!(stats.checksum, seq.checksum, "post-retrain sharded ≠ sequential");
    println!(
        "retrain: republished at generation {g}, remainder fraction {:.2}%, checksum OK",
        sharded.remainder_fraction() * 100.0,
    );
}
