//! Quickstart: build a NuevoMatch classifier over a small ACL-style
//! rule-set and classify a few packets.
//!
//! ```sh
//! cargo run -p nm-examples --release --bin quickstart
//! ```

use nm_common::{fivetuple, Classifier, FieldsSpec, FiveTuple, RuleSet};
use nm_tuplemerge::TupleMerge;
use nuevomatch::{NuevoMatch, NuevoMatchConfig};

fn main() {
    // 1. A hand-written rule-set: the paper's Figure 2 flavour — overlapping
    //    prefixes and port ranges, highest priority (lowest number) wins.
    let rules = vec![
        FiveTuple::new().dst_prefix([10, 10, 0, 0], 16).dst_port_range(10, 18).into_rule(0, 0),
        FiveTuple::new().dst_prefix([10, 10, 1, 0], 24).dst_port_range(15, 25).into_rule(1, 1),
        FiveTuple::new().dst_prefix([10, 0, 0, 0], 8).dst_port_range(5, 8).into_rule(2, 2),
        FiveTuple::new().dst_prefix([10, 10, 3, 0], 24).dst_port_range(7, 20).into_rule(3, 3),
        FiveTuple::new().dst_prefix([10, 10, 3, 100], 32).dst_port_exact(19).into_rule(4, 4),
    ];
    let set = RuleSet::new(FieldsSpec::five_tuple(), rules).expect("valid rules");

    // 2. Build NuevoMatch: iSet partitioning + RQ-RMI training happen here.
    //    Any `Classifier` can index the remainder; TupleMerge is the paper's
    //    update-friendly choice.
    let nm = NuevoMatch::build(&set, &NuevoMatchConfig::default(), TupleMerge::build)
        .expect("training converges");

    println!("built NuevoMatch over {} rules:", set.len());
    println!("  iSets:          {}", nm.isets().len());
    println!("  iSet coverage:  {:.0}%", nm.coverage() * 100.0);
    println!("  remainder:      {} rules", nm.remainder().num_rules());
    println!("  index memory:   {} bytes", nm.memory_bytes());

    // 3. Classify: the paper's example packet 10.10.3.100:19 matches rules
    //    R3 (priority 4 in the paper's 1-based table) and R4; R3 wins.
    let packet = [
        0u64,                              // src-ip (wildcarded by all rules)
        fivetuple::ipv4([10, 10, 3, 100]), // dst-ip
        0,                                 // src-port
        19,                                // dst-port
        6,                                 // proto
    ];
    let verdict = nm.classify(&packet).expect("matches");
    println!("\npacket 10.10.3.100:19 -> rule R{} (action a{})", verdict.rule, verdict.rule + 1);
    assert_eq!(verdict.rule, 3);

    // A packet nothing matches.
    let miss = [0u64, fivetuple::ipv4([192, 168, 0, 1]), 0, 9999, 6];
    assert!(nm.classify(&miss).is_none());
    println!("packet 192.168.0.1:9999 -> no match (as expected)");
}
