//! Single-field forwarding (the Figure 10 scenario): a Stanford-like
//! backbone FIB indexed by NuevoMatch with a TupleMerge remainder.
//!
//! Single-field rule-sets are the stress case for iSet partitioning — there
//! is only one dimension to be conflict-free in, and backbone FIBs nest
//! prefixes heavily. The paper still covers >90% with 2 iSets; this example
//! shows the same structure and the resulting speedup.
//!
//! ```sh
//! cargo run -p nm-examples --release --bin forwarding_fib [-- <rules> <packets>]
//! ```

use nm_analysis::{centrality_1d, diversity, Table};
use nm_classbench::stanford_fib;
use nm_common::memsize::human_bytes;
use nm_common::Classifier;
use nm_trace::{uniform_trace, zipf_trace};
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_sequential;
use nuevomatch::{NuevoMatch, NuevoMatchConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rules: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let packets: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100_000);

    let fib = stanford_fib(rules, 7);
    println!("FIB: {} unique dst-IP prefixes", fib.len());
    println!("  diversity:  {:.2}", diversity(&fib, 0));
    println!("  centrality: {} (lower bound on iSets for full coverage)", centrality_1d(&fib, 0));

    let tm = TupleMerge::build(&fib);
    let nm =
        NuevoMatch::build(&fib, &NuevoMatchConfig::default(), TupleMerge::build).expect("build nm");
    println!("\nNuevoMatch: {} iSets, {:.1}% coverage", nm.isets().len(), nm.coverage() * 100.0);
    for (i, iset) in nm.isets().iter().enumerate() {
        println!(
            "  iSet {}: {} prefixes, worst error bound {}, model {}",
            i,
            iset.len(),
            iset.model().max_error_bound(),
            human_bytes(iset.memory_bytes()),
        );
    }

    let mut table = Table::new(&["trace", "tm pps", "nm pps", "speedup"]);
    for (label, trace) in [
        ("uniform", uniform_trace(&fib, packets, 3)),
        ("zipf a=1.25", zipf_trace(&fib, packets, 1.25, 3)),
    ] {
        let a = run_sequential(&tm, &trace);
        let b = run_sequential(&nm, &trace);
        assert_eq!(a.checksum, b.checksum, "engines disagree");
        table.row(vec![
            label.into(),
            format!("{:.2e}", a.pps),
            format!("{:.2e}", b.pps),
            format!("{:.2}x", b.pps / a.pps),
        ]);
    }
    println!();
    print!("{}", table.render());
    println!(
        "\nindex memory: tm {} vs nm {} (remainder {} + RQ-RMI)",
        human_bytes(tm.memory_bytes()),
        human_bytes(nm.memory_bytes()),
        human_bytes(nm.remainder().memory_bytes()),
    );
}
