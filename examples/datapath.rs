//! A miniature software datapath: raw Ethernet frames → zero-copy 5-tuple
//! extraction → exact-match flow cache → NuevoMatch → action.
//!
//! This is the deployment shape §5.2 of the paper sketches for Open vSwitch:
//! the cache absorbs the traffic's temporal locality, the classifier handles
//! the miss stream. Frames are synthesised from a CAIDA-like trace so the
//! cache has realistic locality to exploit.
//!
//! ```sh
//! cargo run -p nm-examples --release --bin datapath
//! ```

use nm_classbench::{generate, AppKind};
use nm_common::wire::{build_ipv4_frame, parse_five_tuple};
use nm_common::Classifier;
use nm_trace::{caida_like_trace, CaidaLikeConfig};
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::FlowCache;
use nuevomatch::{NuevoMatch, NuevoMatchConfig};
use std::time::Instant;

fn main() {
    // Control plane: rules + classifier + cache.
    let rules = 10_000usize;
    let set = generate(AppKind::Acl, rules, 3);
    let nm =
        NuevoMatch::build(&set, &NuevoMatchConfig::default(), TupleMerge::build).expect("build");
    println!(
        "classifier: {} rules, {} iSets, {:.0}% coverage, {} B index",
        rules,
        nm.isets().len(),
        nm.coverage() * 100.0,
        nm.memory_bytes()
    );
    let datapath = FlowCache::new(nm, 1 << 14);

    // "Wire": synthesise frames from a locality-bearing trace. Protocols
    // without an L4 port header (everything except TCP/UDP/SCTP/UDP-Lite)
    // carry no ports on a real wire, so those flows are normalised to
    // port 0 — some port-constrained rules legitimately cannot match them.
    let trace = caida_like_trace(&set, 200_000, CaidaLikeConfig::default(), 9);
    let frames: Vec<Vec<u8>> = trace
        .iter()
        .map(|k| {
            let portful = matches!(k[4], 6 | 17 | 132 | 136);
            let (sp, dp) = if portful { (k[2], k[3]) } else { (0, 0) };
            build_ipv4_frame(&[k[0], k[1], sp, dp, k[4]])
        })
        .collect();
    println!("trace: {} frames ({} bytes on the wire)", frames.len(), frames.len() * 54);

    // Data plane loop.
    let mut actions = [0u64; 2]; // [dropped-by-no-match, forwarded]
    let mut parse_errors = 0u64;
    let t0 = Instant::now();
    for frame in &frames {
        match parse_five_tuple(frame) {
            Ok(key) => match datapath.classify(&key) {
                Some(_verdict) => actions[1] += 1,
                None => actions[0] += 1,
            },
            Err(_) => parse_errors += 1,
        }
    }
    let dt = t0.elapsed();

    let pps = frames.len() as f64 / dt.as_secs_f64();
    let stats = datapath.stats();
    println!("\nprocessed {} frames in {:.3}s = {:.3e} pps", frames.len(), dt.as_secs_f64(), pps);
    println!(
        "  forwarded: {}   unmatched: {}   parse errors: {}",
        actions[1], actions[0], parse_errors
    );
    println!(
        "  flow-cache: {:.1}% hit rate ({} hits / {} misses)",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.misses
    );
    assert_eq!(parse_errors, 0);
    assert_eq!(actions[0] + actions[1], frames.len() as u64);
    println!(
        "\nUnmatched packets are portless-protocol flows (ICMP etc.) whose source rule\n\
         constrained a port — impossible headers on a real wire, correctly rejected.\n\
         The hit rate shows how much skew the cache absorbed before NuevoMatch."
    );
}
