//! ACL vs firewall workloads: how rule structure drives NuevoMatch's wins.
//!
//! Generates an ACL-style and an FW-style rule-set of the same size, builds
//! every engine in the workspace over both, and prints throughput, memory
//! and coverage side by side — the Figure 9/13 story at example scale.
//!
//! ```sh
//! cargo run -p nm-examples --release --bin acl_firewall [-- <rules> <packets>]
//! ```

use nm_analysis::Table;
use nm_classbench::{generate, AppKind};
use nm_common::memsize::human_bytes;
use nm_common::{Classifier, RuleSet};
use nm_cutsplit::CutSplit;
use nm_neurocuts::{NeuroCuts, NeuroCutsConfig};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_sequential;
use nuevomatch::{NuevoMatch, NuevoMatchConfig};

fn run_suite(label: &str, set: &RuleSet, packets: usize) {
    let trace = uniform_trace(set, packets, 42);
    let nc_cfg = NeuroCutsConfig { iterations: 8, sample: 1_024, ..Default::default() };

    let engines: Vec<(String, Box<dyn Classifier>)> = vec![
        ("tm".into(), Box::new(TupleMerge::build(set))),
        ("cs".into(), Box::new(CutSplit::build(set))),
        ("nc".into(), Box::new(NeuroCuts::with_config(set, nc_cfg))),
        (
            "nm w/ tm".into(),
            Box::new(
                NuevoMatch::build(set, &NuevoMatchConfig::default(), TupleMerge::build).unwrap(),
            ),
        ),
        (
            "nm w/ cs".into(),
            Box::new(
                NuevoMatch::build(
                    set,
                    &NuevoMatchConfig {
                        max_isets: 2,
                        min_iset_coverage: 0.25,
                        ..Default::default()
                    },
                    CutSplit::build,
                )
                .unwrap(),
            ),
        ),
    ];

    println!("=== {label}: {} rules, {} packets ===", set.len(), trace.len());
    let mut table = Table::new(&["engine", "throughput (pps)", "ns/packet", "index memory"]);
    let mut checksum = None;
    for (name, engine) in &engines {
        let stats = run_sequential(engine.as_ref(), &trace);
        match checksum {
            None => checksum = Some(stats.checksum),
            Some(c) => assert_eq!(c, stats.checksum, "{name} disagrees with the other engines"),
        }
        table.row(vec![
            name.clone(),
            format!("{:.2e}", stats.pps),
            format!("{:.0}", 1e9 / stats.pps),
            human_bytes(engine.memory_bytes()),
        ]);
    }
    print!("{}", table.render());
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rules: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let packets: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50_000);

    let acl = generate(AppKind::Acl, rules, 1);
    let fw = generate(AppKind::Fw, rules, 1);

    run_suite("ACL profile", &acl, packets);
    run_suite("Firewall profile", &fw, packets);

    println!(
        "Reading the tables: the ACL set partitions into 1-2 iSets (high address\n\
         diversity), so NuevoMatch's remainder is tiny and its index is KBs where the\n\
         baselines need MBs. The FW set is wildcard-heavy: coverage drops, more rules\n\
         stay in the remainder, and the gap narrows — exactly the paper's §5.3 story."
    );
}
